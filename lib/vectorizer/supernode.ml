(* Super-Node construction, leaf/trunk reordering and code morphing
   (paper §IV, Listings 2 and 3).

   A Super-Node is the group of per-lane trunk chains ({!Chain.t}) of
   one operator family.  It is treated as a single fat node whose
   operands (the leaves) can be reordered across the whole node, under
   the APO legality rules:

   - a leaf alone may move to a position with the same APO
     (§IV-C2);
   - a leaf may move to a position with a *different* original APO if
     the trunk nodes are moved along with it, which is legal as long
     as every leaf keeps its own APO (§IV-C3).  In the regenerated
     left-leaning chain this means the leaf brings its accumulated
     operation with it; the only residual constraint is that the first
     position of a chain has no operator of its own and therefore must
     hold a [Plus]-APO leaf.

   After the best order is chosen (greedy, root-first, scored with the
   LSLP look-ahead), the per-lane chains are regenerated in the IR as
   left-leaning chains realising that order, and the old trunk
   instructions are erased — the "code massaging" the rest of SLP then
   benefits from. *)

open Snslp_ir

type t = {
  config : Config.t;
  func : Defs.func;
  lanes : Chain.t array;
  n : int; (* leaves per lane *)
  cache : Lookahead.cache option;
      (* the graph builder's look-ahead memo; scoring here happens
         strictly before this node's own IR rewrite, so the memo stays
         valid throughout one massage *)
}

(* --- Construction legality -------------------------------------------- *)

let disjoint_trunks (lanes : Chain.t array) =
  let seen = Hashtbl.create 16 in
  Array.for_all
    (fun (c : Chain.t) ->
      List.for_all
        (fun (i : Defs.instr) ->
          if Hashtbl.mem seen i.Defs.iid then false
          else begin
            Hashtbl.replace seen i.Defs.iid ();
            true
          end)
        c.Chain.trunk)
    lanes

(* [recognise config func roots] builds the Super-Node covering the
   given root group, if the lanes form compatible chains (same family,
   same element type, same operand count — the areCompatible checks of
   Listing 1). *)
let recognise ?cache (config : Config.t) (func : Defs.func) (roots : Defs.instr array) :
    t option =
  if Array.length roots < 2 then None
  else
    let chains = Array.map (Chain.discover config func) roots in
    if Array.exists Option.is_none chains then None
    else
      let lanes = Array.map Option.get chains in
      let c0 = lanes.(0) in
      let compatible (c : Chain.t) =
        c.Chain.fam = c0.Chain.fam
        && Ty.scalar_equal c.Chain.elem c0.Chain.elem
        && Array.length c.Chain.leaves = Array.length c0.Chain.leaves
      in
      if Array.for_all compatible lanes && disjoint_trunks lanes then
        Some { config; func; lanes; n = Array.length c0.Chain.leaves; cache }
      else None

(* --- Reordering state -------------------------------------------------- *)

type lane_state = {
  chain : Chain.t;
  used : bool array; (* per leaf index *)
  chosen : int array; (* position -> leaf index, -1 while unassigned *)
}

let plus_remaining (st : lane_state) ~excluding =
  let count = ref 0 in
  Array.iteri
    (fun k (l : Chain.leaf) ->
      if (not st.used.(k)) && k <> excluding && l.Chain.lapo = Apo.Plus then incr count)
    st.chain.Chain.leaves;
  !count

(* The completability reservation: the first chain position carries no
   operator of its own, so it must receive a Plus-APO leaf — both
   directly (pos = 0) and as a reservation (never consume the last
   unused Plus leaf while position 0 is still open, which it always is
   during the descending sweep). *)
let reservation_ok (st : lane_state) ~leaf ~pos =
  let apo = st.chain.Chain.leaves.(leaf).Chain.lapo in
  if pos = 0 then Apo.equal apo Apo.Plus
  else Apo.equal apo Apo.Minus || plus_remaining st ~excluding:leaf >= 1

(* Legality of moving only the leaf: the target position keeps its
   original APO, so the leaf must match it (§IV-C2). *)
let can_move_leaf_only (st : lane_state) ~leaf ~pos =
  (not st.used.(leaf))
  && Apo.equal st.chain.Chain.leaves.(leaf).Chain.lapo st.chain.Chain.leaves.(pos).Chain.lapo
  && reservation_ok st ~leaf ~pos

(* Legality of moving the leaf together with its trunk node (§IV-C3):
   the leaf brings its accumulated operation along, so any position is
   reachable subject only to the position-0 reservation. *)
let can_move_with_trunk (st : lane_state) ~leaf ~pos =
  (not st.used.(leaf)) && reservation_ok st ~leaf ~pos

let legal (st : lane_state) ~leaf ~pos =
  can_move_leaf_only st ~leaf ~pos || can_move_with_trunk st ~leaf ~pos

(* --- buildGroup (Listing 3) ------------------------------------------- *)

(* Scores are doubled with an identity bonus: when look-ahead ties, a
   leaf staying at its original position wins, so already-isomorphic
   code is left untouched. *)
let boosted score ~(leaf : Chain.leaf) ~pos =
  (2 * score) + if leaf.Chain.lpos = pos then 1 else 0

(* Given the chosen leaf of lane 0, greedily extend the group across
   the remaining lanes, picking for each lane the unused legal leaf
   with the best look-ahead score against the previous lane's pick. *)
let build_group (sn : t) (states : lane_state array) ~(left : int) ~(pos : int) :
    int array option =
  let depth = sn.config.Config.lookahead_depth in
  let chosen = Array.make (Array.length sn.lanes) (-1) in
  chosen.(0) <- left;
  let prev = ref states.(0).chain.Chain.leaves.(left).Chain.lvalue in
  let ok = ref true in
  for lane = 1 to Array.length sn.lanes - 1 do
    if !ok then begin
      let st = states.(lane) in
      let best = ref None in
      Array.iteri
        (fun k (l : Chain.leaf) ->
          (* Two-step legality, as in Listing 3: the cheap leaf-only
             move first, the trunk-assisted move second. *)
          if can_move_leaf_only st ~leaf:k ~pos || can_move_with_trunk st ~leaf:k ~pos
          then begin
            let s =
              boosted (Lookahead.score ?cache:sn.cache ~depth !prev l.Chain.lvalue) ~leaf:l
                ~pos
            in
            match !best with
            | Some (_, bs) when bs >= s -> ()
            | _ -> best := Some (k, s)
          end)
        st.chain.Chain.leaves;
      match !best with
      | None -> ok := false
      | Some (k, _) ->
          chosen.(lane) <- k;
          prev := st.chain.Chain.leaves.(k).Chain.lvalue
    end
  done;
  if !ok then Some chosen else None

let group_score (sn : t) (states : lane_state array) (chosen : int array) ~pos =
  let vals =
    Array.to_list
      (Array.mapi
         (fun lane k -> states.(lane).chain.Chain.leaves.(k).Chain.lvalue)
         chosen)
  in
  let base =
    Lookahead.group_score ?cache:sn.cache ~depth:sn.config.Config.lookahead_depth vals
  in
  let identity_bonus =
    Array.to_list chosen
    |> List.mapi (fun lane k ->
           if states.(lane).chain.Chain.leaves.(k).Chain.lpos = pos then 1 else 0)
    |> List.fold_left ( + ) 0
  in
  (2 * base * Array.length chosen) + identity_bonus

(* --- reorderLeavesAndTrunks (Listing 2) -------------------------------- *)

(* Chooses, for every operand position of the Super-Node, the group of
   leaves (one per lane) that maximises the look-ahead score, visiting
   positions closest to the root first.  Returns the per-lane
   assignment position -> leaf index. *)
let reorder (sn : t) : lane_state array =
  let states =
    Array.map
      (fun chain ->
        {
          chain;
          used = Array.make sn.n false;
          chosen = Array.make sn.n (-1);
        })
      sn.lanes
  in
  for pos = sn.n - 1 downto 0 do
    let best : (int array * int) option ref = ref None in
    Array.iteri
      (fun left (_ : Chain.leaf) ->
        if legal states.(0) ~leaf:left ~pos then
          match build_group sn states ~left ~pos with
          | None -> ()
          | Some chosen -> (
              let s = group_score sn states chosen ~pos in
              match !best with
              | Some (_, bs) when bs >= s -> ()
              | _ -> best := Some (chosen, s)))
      states.(0).chain.Chain.leaves;
    match !best with
    | None ->
        (* Cannot happen: the reservation rule keeps a Plus leaf for
           position 0 and any non-reserved leaf is legal elsewhere. *)
        assert false
    | Some (chosen, _) ->
        Array.iteri
          (fun lane k ->
            states.(lane).used.(k) <- true;
            states.(lane).chosen.(pos) <- k)
          chosen
  done;
  states

(* --- Code generation (SN.generateCode) --------------------------------- *)

let assignment_is_identity (states : lane_state array) =
  Array.for_all
    (fun st ->
      let ok = ref true in
      Array.iteri
        (fun pos k -> if st.chain.Chain.leaves.(k).Chain.lpos <> pos then ok := false)
        st.chosen;
      !ok)
    states

(* Rebuild one lane as a left-leaning chain realising the chosen leaf
   order; returns the new root. *)
let regenerate_lane (config : Config.t) (func : Defs.func) (st : lane_state) :
    Defs.instr =
  let chain = st.chain in
  let root = chain.Chain.root in
  let block =
    match root.Defs.iblock with Some b -> b | None -> assert false
  in
  let ty = root.Defs.ty in
  let leaf pos = chain.Chain.leaves.(st.chosen.(pos)) in
  assert (Apo.equal (leaf 0).Chain.lapo Apo.Plus);
  let acc = ref (leaf 0).Chain.lvalue in
  let last = ref None in
  for pos = 1 to Array.length chain.Chain.leaves - 1 do
    let l = leaf pos in
    let op = Apo.realising_op chain.Chain.fam l.Chain.lapo in
    let i =
      Func.fresh_instr func (Defs.Binop op) ty [| !acc; l.Chain.lvalue |]
    in
    Block.insert_before block ~anchor:root i;
    acc := Defs.Instr i;
    last := Some i
  done;
  let new_root = match !last with Some i -> i | None -> assert false in
  Func.replace_all_uses func ~old_v:(Defs.Instr root) ~new_v:(Defs.Instr new_root);
  (* The old trunk is now dead.  [trunk] is in discovery pre-order —
     root first, every other trunk node below its single user — so one
     root-first pass erases the whole thing in O(trunk): by the time a
     node is visited, its user is already gone. *)
  if Config.memo_on config then begin
    List.iter
      (fun i -> if not (Func.has_uses func (Defs.Instr i)) then Func.erase_instr func i)
      chain.Chain.trunk;
    assert (List.for_all (fun (i : Defs.instr) -> i.Defs.iblock = None) chain.Chain.trunk)
  end
  else begin
    (* Legacy path for benchmarking: fixpoint over the trunk with a
       whole-function use scan per candidate, O(trunk² × func). *)
    let dead = ref chain.Chain.trunk in
    let progress = ref true in
    while !dead <> [] && !progress do
      progress := false;
      dead :=
        List.filter
          (fun i ->
            if Func.scan_uses_of func (Defs.Instr i) <> [] then true
            else begin
              Func.erase_instr func i;
              progress := true;
              false
            end)
          !dead
    done;
    assert (!dead = [])
  end;
  new_root

type result = {
  new_roots : Defs.instr array;
  size : int; (* trunk depth per lane, the node-size statistic *)
  reordered : bool;
}

(* [massage config func roots] attempts the full Super-Node treatment
   of the group [roots]: recognise, reorder, regenerate.  The IR is
   modified when a reordering was applied (this is semantics-preserving
   scalar code motion, so it needs no undo even if the surrounding
   graph is later judged unprofitable). *)
let massage ?cache (config : Config.t) (func : Defs.func) (roots : Defs.instr array) :
    result option =
  match recognise ?cache config func roots with
  | None -> None
  | Some sn ->
      let states = reorder sn in
      let size = Chain.size sn.lanes.(0) in
      if assignment_is_identity states && Array.for_all Chain.is_canonical sn.lanes then
        Some { new_roots = roots; size; reordered = false }
      else
        let new_roots = Array.map (regenerate_lane config func) states in
        Some { new_roots; size; reordered = true }

(* The SLP vectorization pass (paper Figure 1, outer loop).

   For every block: collect seed groups of adjacent stores, build the
   SLP graph for each, estimate its cost, and when profitable replace
   the scalar groups with vector code.  Statistics are accumulated the
   way the paper reports them — Multi/Super-Node sizes count only for
   graphs that were actually vectorized. *)

open Snslp_ir
open Snslp_analysis
open Snslp_costmodel

type tree_report = {
  seed : string; (* printable description of the seed group *)
  cost : Cost.breakdown;
  vectorized : bool;
  graph_dump : string; (* human-readable node listing *)
}

type report = {
  config : Config.t;
  stats : Stats.t;
  trees : tree_report list;
}

let log_src = Logs.Src.create "snslp.vectorize" ~doc:"SLP vectorizer"

module Log = (val Logs.src_log log_src)

(* Per-domain scratch state.  The parallel driver allocates one per
   worker domain and passes it to every [run] that domain executes;
   the ownership rule is that a scratch value never crosses domains.
   The look-ahead memo inside is keyed by per-function instruction
   ids, so [run] clears it on entry (a new function) and again after
   every IR rewrite (codegen here, massaging inside the graph
   builder), exactly the validity rule the cache always had — lending
   it across seeds and functions only widens reuse between rewrites,
   it never serves a stale entry.  Scores served from the cache equal
   the uncached recursion, so the vectorized output is bit-identical
   with or without a scratch, and for any [Config.jobs] value. *)
type scratch = { lookahead : Lookahead.cache }

let scratch_create () = { lookahead = Lookahead.cache_create () }

let describe_seed (seed : Defs.instr list) =
  String.concat "; " (List.map Instr.to_string seed)

let count_kind (g : Graph.t) kindp =
  List.length (List.filter (fun (n : Graph.node) -> kindp n.Graph.kind) (Graph.nodes g))

(* Attempt one seed group; returns true if it was vectorized.
   [shared_deps]/[dirty] implement the per-block incremental
   dependence analysis: one [Deps.t] serves every seed of the block,
   refreshed in place only after a rewrite actually changed the IR, so
   reachability windows survive across rejected and retried seeds. *)
let try_seed ?(reorder = Graph.R_chain) (config : Config.t) (stats : Stats.t) trees func
    block ~(scratch : scratch option) ~(shared_deps : Deps.t option) ~(dirty : bool ref)
    ~(on_graph : (Graph.t -> unit) option) (seed : Defs.instr list) : bool =
  (* Earlier trees may have consumed these stores. *)
  if not (List.for_all (Block.mem block) seed) then false
  else begin
    let deps =
      match shared_deps with
      | Some d ->
          if !dirty then begin
            Stats.time ~stats "deps" (fun () -> Deps.refresh d block);
            dirty := false
          end;
          Some d
      | None -> None
    in
    (* Lend the domain's look-ahead memo to the graph build; its
       hit/miss counters are cumulative across everything this scratch
       ever served, so harvest the per-graph contribution as a delta. *)
    let cache =
      if Config.memo_on config then
        Option.map (fun s -> s.lookahead) scratch
      else None
    in
    let la_before =
      match cache with Some c -> Lookahead.cache_stats c | None -> (0, 0)
    in
    match
      Stats.time ~stats "graph" (fun () ->
          Graph.build ~stats ?deps ?cache ~reorder config func block seed)
    with
    | None -> false
    | Some g ->
        (match on_graph with Some f -> f g | None -> ());
        stats.Stats.graphs_built <- stats.Stats.graphs_built + 1;
        stats.Stats.nodes_formed <- stats.Stats.nodes_formed + List.length (Graph.nodes g);
        stats.Stats.gathers <-
          stats.Stats.gathers
          + count_kind g (function
              | Graph.K_gather | Graph.K_splat -> true
              | Graph.K_vec | Graph.K_alt _ | Graph.K_perm _ -> false);
        let cost = Stats.time ~stats "cost" (fun () -> Cost.of_graph config g) in
        let vectorized = Cost.profitable config cost in
        Log.debug (fun m ->
            m "seed [%s]: %a -> %s" (describe_seed seed) Cost.pp cost
              (if vectorized then "vectorize" else "reject"));
        if vectorized then begin
          let rep = Stats.time ~stats "codegen" (fun () -> Codegen.run g) in
          dirty := true;
          (* Codegen rewrote the block: a lent memo's entries now
             describe dead IR.  (A graph-owned memo dies with the
             graph; the counters survive the clear either way.) *)
          (match cache with Some c -> Lookahead.cache_clear c | None -> ());
          stats.Stats.graphs_vectorized <- stats.Stats.graphs_vectorized + 1;
          stats.Stats.vector_instrs_emitted <-
            stats.Stats.vector_instrs_emitted + rep.Codegen.vector_instrs;
          stats.Stats.scalars_erased <-
            stats.Stats.scalars_erased + rep.Codegen.scalars_erased;
          List.iter (fun size -> Stats.record_supernode stats ~size) g.Graph.supernode_sizes
        end;
        (* Harvest the per-graph memoization counters.  The shared
           dependence analysis is harvested once per block by [run];
           a graph-owned one reports its full builds here.  For a lent
           (scratch) memo the counters are lifetime totals, so only
           the delta since this build started is charged. *)
        (match g.Graph.lookahead_cache with
        | Some c ->
            let h0, m0 = la_before in
            let h, m = Lookahead.cache_stats c in
            stats.Stats.lookahead_hits <- stats.Stats.lookahead_hits + h - h0;
            stats.Stats.lookahead_misses <- stats.Stats.lookahead_misses + m - m0
        | None -> ());
        stats.Stats.deps_builds <- stats.Stats.deps_builds + g.Graph.deps_rebuilds;
        trees :=
          { seed = describe_seed seed; cost; vectorized; graph_dump = Fmt.str "%a" Graph.pp g }
          :: !trees;
        vectorized
  end

(* [run_greedy ?scratch config func] vectorizes [func] in place and
   returns the detailed report — the paper's greedy root-first driver,
   byte-for-byte the legacy path ([Config.Greedy] dispatches here
   unconditionally).

   Each run of adjacent stores is first attempted at the target's full
   vector width; stores of rejected groups (and the short tail of the
   run) are retried at the next narrower power-of-two width, as LLVM's
   SLP does.  The function is verified after every rewrite. *)
let run_greedy ?scratch ?on_graph (config : Config.t) (func : Defs.func) : report =
  (* Collapse [Auto] memoization here, once per function: everything
     below (graph build, chains, cost, reduction seeding) then sees a
     concrete [On]/[Off] policy sized to this function. *)
  let config = Config.resolve_memo ~num_instrs:(Func.num_instrs func) config in
  (* A scratch's memo may hold entries for the previous function this
     domain processed; instruction ids are only unique per function. *)
  (match scratch with Some s -> Lookahead.cache_clear s.lookahead | None -> ());
  let stats = Stats.create () in
  let trees = ref [] in
  let lanes_for = Target.lanes_for config.Config.target in
  List.iter
    (fun block ->
      let runs = Seeds.runs block in
      (* One dependence analysis per block under memoization; the
         unmemoized vectorizer lets every graph build its own. *)
      let shared_deps =
        if Config.memo_on config && runs <> [] then begin
          stats.Stats.deps_builds <- stats.Stats.deps_builds + 1;
          Some (Stats.time ~stats "deps" (fun () -> Deps.of_block block))
        end
        else None
      in
      let dirty = ref false in
      List.iter
        (fun run ->
          let max_width = lanes_for (Seeds.elem_of_run run) in
          let leftover = ref run in
          List.iter
            (fun width ->
              (* Stores not covered at wider widths may no longer be
                 contiguous: re-split before chunking. *)
              let next = ref [] in
              List.iter
                (fun sub_run ->
                  if List.length sub_run >= width then begin
                    let groups, rest = Seeds.chunk ~width sub_run in
                    let failed =
                      List.concat_map
                        (fun seed ->
                          if
                            try_seed config stats trees func block ~scratch
                              ~shared_deps ~dirty ~on_graph seed
                          then []
                          else seed)
                        groups
                    in
                    next := !next @ failed @ rest
                  end
                  else next := !next @ sub_run)
                (Seeds.recut !leftover);
              leftover := !next)
            (Seeds.widths ~max_width))
        runs;
      match shared_deps with
      | Some d ->
          let h, m = Deps.reach_stats d in
          stats.Stats.reach_hits <- stats.Stats.reach_hits + h;
          stats.Stats.reach_misses <- stats.Stats.reach_misses + m;
          stats.Stats.deps_refreshes <- stats.Stats.deps_refreshes + Deps.refresh_count d
      | None -> ())
    (Func.blocks func);
  if config.Config.reductions then
    stats.Stats.reductions <-
      stats.Stats.reductions
      + Stats.time ~stats "reduction" (fun () -> Reduction.run config stats func);
  Verifier.verify_exn func;
  { config; stats; trees = List.rev !trees }

(* --- Global pack selection (Config.Global) ----------------------------- *)

(* [replay_plan config plan func] commits a solver plan: for each
   chosen candidate, in plan (= greedy preference) order, rebuild its
   tree on the live IR — with the candidate's operand-reorder strategy
   — and let the usual profitability test decide the commit, exactly
   as [try_seed] does for greedy.  Estimates were measured on a
   scratch clone whose massage state can differ slightly, so a
   replayed tree may legitimately be rejected here; claim-disjointness
   of the plan guarantees the chosen seeds never consume each other.
   Reductions and verification run as in the greedy driver. *)
let replay_plan ?scratch ?on_graph (config : Config.t) (plan : Packing.candidate list)
    (func : Defs.func) : report =
  let config = Config.resolve_memo ~num_instrs:(Func.num_instrs func) config in
  let stats = Stats.create () in
  let trees = ref [] in
  List.iter
    (fun (block : Defs.block) ->
      let cands =
        List.filter (fun (c : Packing.candidate) -> c.Packing.bid = block.Defs.bid) plan
      in
      if cands <> [] then begin
        let shared_deps =
          if Config.memo_on config then begin
            stats.Stats.deps_builds <- stats.Stats.deps_builds + 1;
            Some (Stats.time ~stats "deps" (fun () -> Deps.of_block block))
          end
          else None
        in
        let dirty = ref false in
        List.iter
          (fun (c : Packing.candidate) ->
            let by_iid = Hashtbl.create 16 in
            Block.iter (fun i -> Hashtbl.replace by_iid i.Defs.iid i) block;
            let seed = List.filter_map (Hashtbl.find_opt by_iid) c.Packing.seed_iids in
            if List.length seed = List.length c.Packing.seed_iids then
              ignore
                (try_seed ~reorder:c.Packing.reorder config stats trees func block
                   ~scratch ~shared_deps ~dirty ~on_graph seed))
          cands;
        match shared_deps with
        | Some d ->
            let h, m = Deps.reach_stats d in
            stats.Stats.reach_hits <- stats.Stats.reach_hits + h;
            stats.Stats.reach_misses <- stats.Stats.reach_misses + m;
            stats.Stats.deps_refreshes <- stats.Stats.deps_refreshes + Deps.refresh_count d
        | None -> ()
      end)
    (Func.blocks func);
  if config.Config.reductions then
    stats.Stats.reductions <-
      stats.Stats.reductions
      + Stats.time ~stats "reduction" (fun () -> Reduction.run config stats func);
  Verifier.verify_exn func;
  { config; stats; trees = List.rev !trees }

(* The global path is a portfolio: run the untouched greedy driver on
   one clone, enumerate + solve + replay the best plans (and the
   always-cheap empty plan, which is how the portfolio gets to
   *decline* trees the compile-time model mispredicts) on others, rank
   every compiled result with the machine-model static cost, and
   transplant the winner into [func].  Greedy is scored first and ties
   require a strict improvement, so Global is never worse than Greedy
   under the metric, and [beam <= 1] (a single search hypothesis: the
   incumbent) reproduces Greedy bit-identically. *)
let run_global ?scratch ?on_graph ~beam ~node_budget (config : Config.t)
    (func : Defs.func) : report =
  let clear_scratch () =
    match scratch with Some s -> Lookahead.cache_clear s.lookahead | None -> ()
  in
  let greedy_func = Func.clone func in
  let greedy_rep = run_greedy ?scratch ?on_graph config greedy_func in
  let pack_stats = Stats.create () in
  let plans =
    if beam <= 1 then []
    else
      Stats.time ~stats:pack_stats "pack" (fun () ->
          let cands =
            Packing.enumerate ~stats:pack_stats ?on_graph ~node_budget config func
          in
          let profitable = List.filter (Packing.est_profitable config) cands in
          Packing.solve ~stats:pack_stats ~beam ~max_plans:3 profitable)
  in
  let replays =
    if beam <= 1 then []
    else
      List.map
        (fun plan ->
          let f = Func.clone func in
          clear_scratch ();
          let rep = replay_plan ?scratch ?on_graph config plan f in
          (f, rep))
        (plans @ [ [] ])
  in
  pack_stats.Stats.pack_plans <- List.length replays;
  let scored =
    List.map
      (fun (f, rep) -> (Packing.static_cost config f, f, rep))
      ((greedy_func, greedy_rep) :: replays)
  in
  let best =
    List.fold_left
      (fun (bc, bf, br) (c, f, r) -> if c < bc -. 1e-9 then (c, f, r) else (bc, bf, br))
      (List.hd scored) (List.tl scored)
  in
  let _, winner, winner_rep = best in
  func.Defs.blocks <- winner.Defs.blocks;
  func.Defs.next_iid <- winner.Defs.next_iid;
  func.Defs.next_bid <- winner.Defs.next_bid;
  (* The scratch memo holds entries for losing clones' instructions. *)
  clear_scratch ();
  Verifier.verify_exn func;
  { winner_rep with stats = Stats.merge winner_rep.stats pack_stats }

(* [run ?scratch config func] — the packing-strategy dispatcher. *)
let run ?scratch ?on_graph (config : Config.t) (func : Defs.func) : report =
  match config.Config.packing with
  | Config.Greedy -> run_greedy ?scratch ?on_graph config func
  | Config.Global { beam; node_budget } ->
      run_global ?scratch ?on_graph ~beam ~node_budget config func

(** The SLP vectorization pass (paper Figure 1, outer loop): seed
    collection with narrower-width retry, graph construction, cost
    decision, code generation, reduction seeding, statistics. *)

open Snslp_ir

type tree_report = {
  seed : string; (** printable description of the seed group *)
  cost : Cost.breakdown;
  vectorized : bool;
  graph_dump : string; (** human-readable node listing *)
}

type report = { config : Config.t; stats : Stats.t; trees : tree_report list }

type scratch
(** Per-domain scratch state: the look-ahead memo a worker domain
    lends to every graph build it performs.  Ownership rule: a scratch
    never crosses domains, and its memo is cleared on entry to each
    function and after every IR rewrite — so a lent cache only widens
    reuse between rewrites and the output stays bit-identical with or
    without one. *)

val scratch_create : unit -> scratch

val run :
  ?scratch:scratch -> ?on_graph:(Graph.t -> unit) -> Config.t -> Defs.func -> report
(** Vectorizes in place; the function is verified afterwards.
    [scratch] must belong to the calling domain.  [on_graph] observes
    every successfully built SLP graph before the cost decision
    (invariant checking hooks); it must not rewrite the IR. *)

(* Tests for the target descriptions and cost models. *)

open Snslp_ir
open Snslp_costmodel

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_f = Alcotest.(check (float 1e-9))

let test_target_lanes () =
  (* Every selectable target against every scalar type: lanes must be
     width/bits exactly, with no target-specific carve-outs. *)
  let expected (t : Target.t) s = t.Target.vector_bits / Ty.scalar_bits s in
  List.iter
    (fun (t : Target.t) ->
      List.iter
        (fun s ->
          check_int
            (Printf.sprintf "%s %s" t.Target.name (Ty.scalar_to_string s))
            (expected t s) (Target.lanes_for t s))
        [ Ty.I32; Ty.I64; Ty.F32; Ty.F64 ])
    Target.all;
  check_int "sse f64" 2 (Target.lanes_for Target.sse Ty.F64);
  check_int "sse f32" 4 (Target.lanes_for Target.sse Ty.F32);
  check_int "sse i64" 2 (Target.lanes_for Target.sse Ty.I64);
  check_int "avx2 f64" 4 (Target.lanes_for Target.avx2 Ty.F64);
  check_int "avx2 f32" 8 (Target.lanes_for Target.avx2 Ty.F32);
  check_int "avx512 f64" 8 (Target.lanes_for Target.avx512 Ty.F64);
  check_int "avx512 f32" 16 (Target.lanes_for Target.avx512 Ty.F32);
  check_int "avx512 i32" 16 (Target.lanes_for Target.avx512 Ty.I32);
  check_int "neon f64" 2 (Target.lanes_for Target.neon Ty.F64);
  check_int "neon f32" 4 (Target.lanes_for Target.neon Ty.F32);
  check "noaddsub differs only in the flag" true
    (Target.sse_no_addsub.Target.vector_bits = Target.sse.Target.vector_bits
    && not Target.sse_no_addsub.Target.has_addsub);
  check "no 512-bit addsub exists" true (not Target.avx512.Target.has_addsub);
  check "neon: narrow issue, no addsub" true
    (Target.neon.Target.issue_width = 2 && not Target.neon.Target.has_addsub)

let test_target_by_name () =
  List.iter
    (fun (t : Target.t) ->
      match Target.by_name t.Target.name with
      | Some t' -> check (t.Target.name ^ " resolves") true (t' == t)
      | None -> Alcotest.failf "Target.by_name %s = None" t.Target.name)
    Target.all;
  check "unknown target" true (Target.by_name "mmx" = None);
  check "names unique" true
    (let names = List.map (fun (t : Target.t) -> t.Target.name) Target.all in
     List.length names = List.length (List.sort_uniq compare names))

let test_for_target () =
  check "sse -> x86" true (Model.for_target Target.sse == Model.x86);
  check "avx2 -> x86" true (Model.for_target Target.avx2 == Model.x86);
  check "noaddsub -> x86" true (Model.for_target Target.sse_no_addsub == Model.x86);
  check "avx512 -> avx512" true (Model.for_target Target.avx512 == Model.avx512);
  check "neon -> neon" true (Model.for_target Target.neon == Model.neon)

let test_wide_model_shape () =
  (* avx512: arithmetic holds its throughput at full width; what gets
     pricier is everything lane-crossing (shuffles, domain moves). *)
  check "avx512 wide fp add = narrow" true
    (Model.avx512.Model.vector Model.C_fp_addsub ~lanes:8
    = Model.avx512.Model.vector Model.C_fp_addsub ~lanes:2);
  check "avx512 div scales with lanes" true
    (Model.avx512.Model.vector Model.C_fp_div ~lanes:8
    > Model.avx512.Model.vector Model.C_fp_div ~lanes:2);
  check "avx512 shuffle pricier than x86" true
    (Model.avx512.Model.vector Model.C_shuffle ~lanes:8
    > Model.x86.Model.vector Model.C_shuffle ~lanes:8);
  check "avx512 alt pays the blend (no addsub)" true
    (Model.avx512.Model.alt Target.avx512 ~lanes:8 ~fam_mul:false = 3.0);
  (* neon: cheap domain crossing, expensive divides. *)
  check "neon gather lane cheaper than x86" true
    (Model.neon.Model.gather_lane < Model.x86.Model.gather_lane);
  check "neon div slower than x86" true
    (Model.neon.Model.scalar Model.C_fp_div > Model.x86.Model.scalar Model.C_fp_div);
  check "neon alt pays the blend" true
    (Model.neon.Model.alt Target.neon ~lanes:4 ~fam_mul:false = 3.0);
  (* by_name covers the new tables (physical equality: models hold
     closures, so structural compare would raise). *)
  let resolves name m =
    Option.fold ~none:false ~some:(fun m' -> m' == m) (Model.by_name name)
  in
  check "by_name avx512" true (resolves "avx512" Model.avx512);
  check "by_name neon" true (resolves "neon" Model.neon)

let test_class_of_binop () =
  check "int add" true (Model.class_of_binop Defs.Add Ty.i64 = Model.C_int_addsub);
  check "int sub" true (Model.class_of_binop Defs.Sub Ty.i32 = Model.C_int_addsub);
  check "int mul" true (Model.class_of_binop Defs.Mul Ty.i64 = Model.C_int_mul);
  check "fp add" true (Model.class_of_binop Defs.Add Ty.f64 = Model.C_fp_addsub);
  check "fp mul" true (Model.class_of_binop Defs.Mul Ty.f32 = Model.C_fp_mul);
  check "fp div" true (Model.class_of_binop Defs.Div Ty.f64 = Model.C_fp_div);
  check "vector elem decides" true
    (Model.class_of_binop Defs.Add (Ty.vector ~lanes:2 Ty.F64) = Model.C_fp_addsub);
  Alcotest.check_raises "int div rejected"
    (Invalid_argument "class_of_binop: integer division") (fun () ->
      ignore (Model.class_of_binop Defs.Div Ty.i64))

(* The didactic model's defining property: every uniform 2-lane group
   saves exactly 1, a gather costs 2, an alternating add/sub group
   costs net +1 — the numbers behind Figures 2 and 3. *)
let test_paper_model_invariants () =
  let m = Model.paper in
  List.iter
    (fun c ->
      check_f "2-lane group saves 1" (-1.0)
        (m.Model.vector c ~lanes:2 -. (2.0 *. m.Model.scalar c)))
    [ Model.C_fp_addsub; Model.C_int_addsub; Model.C_fp_mul; Model.C_load; Model.C_store ];
  check_f "gather of 2" 2.0 (2.0 *. m.Model.gather_lane);
  check_f "alt group nets +1" 1.0
    (m.Model.alt Target.sse ~lanes:2 ~fam_mul:false -. (2.0 *. m.Model.scalar Model.C_fp_addsub));
  check_f "gep free" 0.0 (m.Model.scalar Model.C_gep)

let test_x86_model_shape () =
  let m = Model.x86 in
  check "div dominates" true (m.Model.scalar Model.C_fp_div > 4.0 *. m.Model.scalar Model.C_fp_addsub);
  check "vector div scales with lanes" true
    (m.Model.vector Model.C_fp_div ~lanes:4 > m.Model.vector Model.C_fp_div ~lanes:2);
  check "inserts pricier than didactic" true (m.Model.gather_lane > Model.paper.Model.gather_lane);
  check "addsub beats blend" true
    (m.Model.alt Target.sse ~lanes:2 ~fam_mul:false
    < m.Model.alt Target.sse_no_addsub ~lanes:2 ~fam_mul:false);
  check "mul/div alternation is expensive" true
    (m.Model.alt Target.sse ~lanes:2 ~fam_mul:true
    > m.Model.alt Target.sse ~lanes:2 ~fam_mul:false)

let test_by_name () =
  (* Models contain closures, so compare by name. *)
  let name m = Option.map (fun (m : Model.t) -> m.Model.name) m in
  check "paper" true (name (Model.by_name "paper") = Some "paper");
  check "x86" true (name (Model.by_name "x86") = Some "x86");
  check "unknown" true (Model.by_name "gpu" = None)

let suite =
  [
    ( "costmodel",
      [
        Alcotest.test_case "target lanes" `Quick test_target_lanes;
        Alcotest.test_case "target by name" `Quick test_target_by_name;
        Alcotest.test_case "model for target" `Quick test_for_target;
        Alcotest.test_case "wide model shapes" `Quick test_wide_model_shape;
        Alcotest.test_case "binop classes" `Quick test_class_of_binop;
        Alcotest.test_case "paper model invariants" `Quick test_paper_model_invariants;
        Alcotest.test_case "x86 model shape" `Quick test_x86_model_shape;
        Alcotest.test_case "lookup by name" `Quick test_by_name;
      ] );
  ]

(* Differential tests between the two interpreter engines: the boxed
   tree-walker and the staged compiled-closure engine must be
   observationally identical — bit-exact final memory, identical step
   counts, byte-identical trap messages, same step-budget behaviour —
   over generated IR (scalar), vectorized pipeline output (vector ops,
   shuffles, alternating opcodes), and hand-built edge cases.

   Two deliberate divergences are *not* tested for parity because the
   compiled engine's scalar banks unbox eagerly (see docs/INTERP.md):
   extracting an undef lane, and selecting an undef scalar on the
   taken branch, trap at the producer instead of the first use. *)

open Snslp_ir
open Snslp_interp
module Gen = Snslp_fuzzer.Gen
module Oracle = Snslp_fuzzer.Oracle
module Pipeline = Snslp_passes.Pipeline

let check = Alcotest.(check bool)
let check_f = Alcotest.(check (float 0.0))
let ptr pos = Rvalue.R_ptr { base = pos; offset = 0 }

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

type outcome = { trap : string option; steps : int; memory : Memory.t }

let run_one engine ?max_steps (func : Defs.func) ~(args : Rvalue.t array)
    ~(memory : Memory.t) : outcome =
  match Interp.exec ~engine ?max_steps func ~args ~memory with
  | steps -> { trap = None; steps; memory }
  | exception e -> { trap = Some (Printexc.to_string e); steps = -1; memory }

let describe = function None -> "ok" | Some t -> t

(* Run [func] on both engines over identically-built state and demand
   observational identity; returns the compiled engine's outcome for
   further assertions. *)
let assert_parity ?max_steps name (func : Defs.func) ~(memory : unit -> Memory.t)
    ~(args : unit -> Rvalue.t array) : outcome =
  let a = run_one Interp.Tree ?max_steps func ~args:(args ()) ~memory:(memory ()) in
  let b = run_one Interp.Compiled ?max_steps func ~args:(args ()) ~memory:(memory ()) in
  (match (a.trap, b.trap) with
  | None, None ->
      if a.steps <> b.steps then
        Alcotest.failf "%s: step counts differ (%d vs %d)" name a.steps b.steps
  | Some x, Some y ->
      if not (String.equal x y) then Alcotest.failf "%s: traps differ (%s vs %s)" name x y
  | x, y ->
      Alcotest.failf "%s: one engine trapped (tree: %s, compiled: %s)" name (describe x)
        (describe y));
  if not (Memory.equal a.memory b.memory) then
    Alcotest.failf "%s: final memories differ" name;
  b

(* Parity under the oracle's own harness (deterministic memory and
   argument construction). *)
let oracle_parity name func =
  ignore
    (assert_parity name func
       ~memory:(fun () -> Oracle.fresh_memory func)
       ~args:(fun () -> Oracle.make_args func))

let engines_agree (func : Defs.func) : bool =
  let a =
    run_one Interp.Tree func ~args:(Oracle.make_args func)
      ~memory:(Oracle.fresh_memory func)
  in
  let b =
    run_one Interp.Compiled func ~args:(Oracle.make_args func)
      ~memory:(Oracle.fresh_memory func)
  in
  (match (a.trap, b.trap) with
  | None, None -> a.steps = b.steps
  | Some x, Some y -> String.equal x y
  | _ -> false)
  && Memory.equal a.memory b.memory

(* The acceptance sweep: 1000 deterministic generator seeds, bit-exact
   agreement on every one. *)
let test_sweep_1000_seeds () =
  for seed = 0 to 999 do
    oracle_parity (Printf.sprintf "seed %d" seed) (Gen.generate ~seed ())
  done

(* Random-seed property on top of the deterministic sweep. *)
let prop_engines_agree =
  QCheck.Test.make ~count:500 ~name:"compiled engine == tree-walker (500 random seeds)"
    QCheck.(make Gen.(int_bound 10_000_000))
    (fun seed -> engines_agree (Snslp_fuzzer.Gen.generate ~seed ()))

(* Generated IR is scalar; vector loads/stores, shuffles, inserts,
   extracts and alternating opcodes only appear after vectorization —
   so the engines must also agree on every pipeline configuration's
   output. *)
let test_optimized_parity () =
  for seed = 0 to 49 do
    let func = Gen.generate ~seed () in
    List.iter
      (fun (name, setting) ->
        let opt = (Pipeline.run ~setting func).Pipeline.func in
        oracle_parity (Printf.sprintf "seed %d, config %s" seed name) opt)
      Oracle.default_configs
  done

(* A plan is reusable: same function executed twice through one plan
   must behave like two fresh tree-walks. *)
let test_plan_reuse () =
  let func = Gen.generate ~seed:7 () in
  let plan = Interp.compile func in
  let m1 = Oracle.fresh_memory func in
  let n1 = Interp.execute plan ~args:(Oracle.make_args func) ~memory:m1 in
  let m2 = Oracle.fresh_memory func in
  let n2 = Interp.execute plan ~args:(Oracle.make_args func) ~memory:m2 in
  Alcotest.(check int) "same steps on reuse" n1 n2;
  check "same memory on reuse" true (Memory.equal m1 m2);
  check "matches the tree-walker" true
    (Memory.equal m1 (Oracle.run_memory ~engine:Interp.Tree func))

(* The on_exec stream must be identical: same instructions, same
   order, on both engines. *)
let test_on_exec_stream () =
  let func = Gen.generate ~seed:11 () in
  let trace engine =
    let ids = ref [] in
    ignore
      (Interp.exec ~engine
         ~on_exec:(fun i -> ids := i.Defs.iid :: !ids)
         func ~args:(Oracle.make_args func) ~memory:(Oracle.fresh_memory func));
    List.rev !ids
  in
  check "identical on_exec streams" true (trace Interp.Tree = trace Interp.Compiled)

(* --- Edge cases ------------------------------------------------------------ *)

let compile_src = Snslp_frontend.Frontend.compile_one

let test_cond_br_both_arms () =
  let f =
    compile_src
      "kernel k(double A[], long i) { if (i < 2) { A[i] = 1.0; } else { A[i] = 2.0; } \
       A[i+4] = 9.0; }"
  in
  List.iter
    (fun idx ->
      let out =
        assert_parity (Printf.sprintf "cond_br i=%Ld" idx) f
          ~memory:(fun () ->
            let m = Memory.create () in
            Memory.set_float_buffer m ~arg_pos:0 (Array.make 8 0.0);
            m)
          ~args:(fun () -> [| ptr 0; Rvalue.R_int idx |])
      in
      let a = Memory.float_buffer out.memory ~arg_pos:0 in
      let i = Int64.to_int idx in
      check_f "arm value" (if i < 2 then 1.0 else 2.0) a.(i);
      check_f "join" 9.0 a.(i + 4))
    [ 0L; 3L ]

(* f32 rounding at every producer: loads round on read, binops round
   after the operation, stores round on write — on both engines, with
   deliberately f32-inexact inputs. *)
let test_f32_rounding_producers () =
  let f =
    compile_src
      "kernel k(float A[], float B[], long i) { A[i] = B[i] + B[i+1]; A[i+1] = B[i+2] * \
       B[i+3]; A[i+2] = B[i+4]; }"
  in
  let vals = [| 0.1; 0.2; 0.3; 0.7; 1.1; 0.0; 0.0; 0.0 |] in
  let out =
    assert_parity "f32 producers" f
      ~memory:(fun () ->
        let m = Memory.create () in
        Memory.set_float_buffer m ~arg_pos:0 (Array.make 8 0.0);
        Memory.set_float_buffer m ~arg_pos:1 (Array.copy vals);
        m)
      ~args:(fun () -> [| ptr 0; ptr 1; Rvalue.R_int 0L |])
  in
  let r = Rvalue.round_f32 in
  let a = Memory.float_buffer out.memory ~arg_pos:0 in
  check_f "load+add rounds" (r (r vals.(0) +. r vals.(1))) a.(0);
  check_f "load+mul rounds" (r (r vals.(2) *. r vals.(3))) a.(1);
  check_f "pass-through load rounds" (r vals.(4)) a.(2)

let test_oob_trap_parity () =
  let f = compile_src "kernel k(double A[], long i) { A[i] = 1.0; }" in
  let out =
    assert_parity "oob" f
      ~memory:(fun () ->
        let m = Memory.create () in
        Memory.set_float_buffer m ~arg_pos:0 (Array.make 2 0.0);
        m)
      ~args:(fun () -> [| ptr 0; Rvalue.R_int 5L |])
  in
  match out.trap with
  | Some t -> check "names the access" true (contains t "arg0[5] out of bounds (size 2)")
  | None -> Alcotest.fail "expected an out-of-bounds trap"

let test_step_budget_parity () =
  let f =
    compile_src
      "kernel k(double A[], long i) { A[i] = A[i] + A[i+1] + A[i+2] + A[i+3]; }"
  in
  let out =
    assert_parity ~max_steps:3 "budget" f
      ~memory:(fun () ->
        let m = Memory.create () in
        Memory.set_float_buffer m ~arg_pos:0 (Array.make 8 1.0);
        m)
      ~args:(fun () -> [| ptr 0; Rvalue.R_int 0L |])
  in
  match out.trap with
  | Some t -> check "budget message" true (contains t "step budget exceeded")
  | None -> Alcotest.fail "expected the step budget to trip"

let test_arity_parity () =
  let f = compile_src "kernel k(double A[], long i) { A[i] = 1.0; }" in
  let out =
    assert_parity "arity" f ~memory:Memory.create ~args:(fun () -> [| ptr 0 |])
  in
  match out.trap with
  | Some t -> check "arity message" true (contains t "expects 2 arguments, got 1")
  | None -> Alcotest.fail "expected an arity trap"

(* --- Hand-built vector edge cases ------------------------------------------ *)

let build_vec_func build =
  let f = Func.create ~name:"v" ~args:[ ("A", Ty.ptr Ty.F64) ] in
  let entry = Func.add_block f "entry" in
  let b = Builder.create f ~at:entry in
  build f b;
  Builder.ret b;
  Verifier.verify_exn f;
  f

let vec_memory () =
  let m = Memory.create () in
  Memory.set_float_buffer m ~arg_pos:0 [| 10.0; 20.0; 1.0; 2.0; 0.0; 0.0; 0.0; 0.0 |];
  m

(* Shuffle with an undef operand, mask confined to the defined vector:
   a fully-defined result on both engines. *)
let test_shuffle_undef_operand () =
  let f =
    build_vec_func (fun fn b ->
        let a = Defs.Arg (Func.arg fn 0) in
        let v1 = Builder.vload b ~lanes:2 a in
        let rev =
          Builder.shuffle b (Instr.value v1)
            (Defs.Undef (Ty.vector ~lanes:2 Ty.F64))
            [| 1; 0 |]
        in
        let g4 = Builder.gep b a (Value.const_int 4) in
        ignore (Builder.store b (Instr.value rev) (Instr.value g4)))
  in
  let out = assert_parity "shuffle undef operand" f ~memory:vec_memory ~args:(fun () -> [| ptr 0 |]) in
  let buf = Memory.float_buffer out.memory ~arg_pos:0 in
  check "clean run" true (out.trap = None);
  check_f "lane0" 20.0 buf.(4);
  check_f "lane1" 10.0 buf.(5)

(* Mask reaching into the undef operand: the resulting vector carries
   an [R_undef] lane, and storing it traps identically on both engines
   — after the defined lane was already written. *)
let test_shuffle_undef_lane_store_traps () =
  let f =
    build_vec_func (fun fn b ->
        let a = Defs.Arg (Func.arg fn 0) in
        let v1 = Builder.vload b ~lanes:2 a in
        let mix =
          Builder.shuffle b (Instr.value v1)
            (Defs.Undef (Ty.vector ~lanes:2 Ty.F64))
            [| 0; 2 |]
        in
        let g4 = Builder.gep b a (Value.const_int 4) in
        ignore (Builder.store b (Instr.value mix) (Instr.value g4)))
  in
  let out =
    assert_parity "shuffle undef lane" f ~memory:vec_memory ~args:(fun () -> [| ptr 0 |])
  in
  (match out.trap with
  | Some _ -> ()
  | None -> Alcotest.fail "expected a trap storing an undef lane");
  check_f "defined lane stored before the trap" 10.0
    (Memory.float_buffer out.memory ~arg_pos:0).(4)

(* Insert into undef: the written lane is defined and extractable; the
   untouched lane stays undef. *)
let test_insert_into_undef () =
  let f =
    build_vec_func (fun fn b ->
        let a = Defs.Arg (Func.arg fn 0) in
        let v1 = Builder.vload b ~lanes:2 a in
        let x0 = Builder.extractelement b (Instr.value v1) 0 in
        let ins =
          Builder.insertelement b
            (Defs.Undef (Ty.vector ~lanes:2 Ty.F64))
            (Instr.value x0) 1
        in
        let x1 = Builder.extractelement b (Instr.value ins) 1 in
        let g6 = Builder.gep b a (Value.const_int 6) in
        ignore (Builder.store b (Instr.value x1) (Instr.value g6)))
  in
  let out =
    assert_parity "insert into undef" f ~memory:vec_memory ~args:(fun () -> [| ptr 0 |])
  in
  check "clean run" true (out.trap = None);
  check_f "extracted the inserted lane" 10.0
    (Memory.float_buffer out.memory ~arg_pos:0).(6)

let suite =
  [
    ( "engines",
      [
        Alcotest.test_case "1000-seed differential sweep" `Quick test_sweep_1000_seeds;
        QCheck_alcotest.to_alcotest prop_engines_agree;
        Alcotest.test_case "parity on vectorized output (50 seeds x 7 configs)" `Slow
          test_optimized_parity;
        Alcotest.test_case "plan reuse" `Quick test_plan_reuse;
        Alcotest.test_case "identical on_exec streams" `Quick test_on_exec_stream;
        Alcotest.test_case "cond_br both arms" `Quick test_cond_br_both_arms;
        Alcotest.test_case "f32 rounding at every producer" `Quick
          test_f32_rounding_producers;
        Alcotest.test_case "OOB trap message parity" `Quick test_oob_trap_parity;
        Alcotest.test_case "step budget parity" `Quick test_step_budget_parity;
        Alcotest.test_case "arity trap parity" `Quick test_arity_parity;
        Alcotest.test_case "shuffle with undef operand" `Quick test_shuffle_undef_operand;
        Alcotest.test_case "shuffle undef lane store traps" `Quick
          test_shuffle_undef_lane_store_traps;
        Alcotest.test_case "insert into undef" `Quick test_insert_into_undef;
      ] );
  ]

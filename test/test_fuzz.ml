(* The fuzzing subsystem's own tests: generator determinism and
   validity, a bounded differential campaign (the fuzz smoke wired
   into `dune runtest`), and an end-to-end reduction exercise driven
   by an intentionally injected bug. *)

open Snslp_ir
open Snslp_vectorizer
module Gen = Snslp_fuzzer.Gen
module Oracle = Snslp_fuzzer.Oracle
module Reduce = Snslp_fuzzer.Reduce
module Campaign = Snslp_fuzzer.Campaign
module Pipeline = Snslp_passes.Pipeline

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* Every generated function must verify — the generator's contract,
   asserted here over a spread of seeds (100% validity). *)
let test_generator_validity () =
  for seed = 0 to 199 do
    let f = Gen.generate ~seed () in
    (match Verifier.check f with
    | Ok () -> ()
    | Error report -> Alcotest.failf "seed %d: generated invalid IR: %s" seed report);
    let stores =
      Func.fold_instrs (fun n i -> if Instr.is_store i then n + 1 else n) 0 f
    in
    check ("seed " ^ string_of_int seed ^ " has stores") true (stores > 0)
  done

(* Same seed, same function — instruction for instruction. *)
let test_generator_determinism () =
  List.iter
    (fun seed ->
      let a = Printer.func_to_string (Gen.generate ~seed ()) in
      let b = Printer.func_to_string (Gen.generate ~seed ()) in
      check_str (Printf.sprintf "seed %d deterministic" seed) a b)
    [ 0; 1; 7; 42; 1234; 99999 ]

(* The generator must actually feed the vectorizer: a healthy share of
   generated functions must get at least one vectorized tree under
   SN-SLP, otherwise the differential campaign fuzzes nothing. *)
let test_generator_vectorizes () =
  let vectorized = ref 0 in
  let n = 100 in
  for seed = 0 to n - 1 do
    let f = Gen.generate ~seed () in
    match (Pipeline.run ~setting:(Some Config.snslp) f).Pipeline.vect_report with
    | Some rep ->
        if
          List.exists (fun (t : Vectorize.tree_report) -> t.Vectorize.vectorized) rep.Vectorize.trees
        then incr vectorized
    | None -> ()
  done;
  if !vectorized * 100 / n < 30 then
    Alcotest.failf "only %d/%d generated functions vectorized" !vectorized n

(* Bounded fuzz smoke: a fixed-seed differential campaign across every
   configuration, including the parallel-driver determinism axis.
   Zero findings expected — a regression that breaks semantics
   anywhere in the pipeline fails this test. *)
let test_campaign_smoke () =
  let result = Campaign.run ~jobs:2 ~reduce:true ~seed:42 ~cases:200 () in
  check_int "cases" 200 result.Campaign.cases;
  List.iter
    (fun (r : Campaign.case_report) ->
      List.iter
        (fun f ->
          Alcotest.failf "case seed %d: %s" r.Campaign.case_seed
            (Oracle.finding_to_string f))
        r.Campaign.findings)
    result.Campaign.reports;
  check "clean" true (Campaign.clean result)

(* The packing-axis campaign: 2000 cases differentially checking
   global pack selection (default beam, and beam 2 with a tight node
   budget so the budget-exhaustion path is exercised) against greedy
   on the same functions.  The oracle's validator-backed
   [Static_mismatch] verdicts count as findings, so a clean run also
   means zero translation-validator mismatches.  Narrower config list
   than the all-configs smoke, deeper case count: this is the
   dedicated soak for the global packing path. *)
let packing_configs : (string * Pipeline.setting) list =
  let snslp = { Config.snslp with Config.verify_each = true } in
  [
    ("snslp-greedy", Some snslp);
    ( "snslp-global",
      Some
        {
          snslp with
          Config.packing =
            Config.Global
              { beam = Config.default_beam; node_budget = Config.default_node_budget };
        } );
    ( "snslp-global-b2",
      Some { snslp with Config.packing = Config.Global { beam = 2; node_budget = 64 } }
    );
  ]

let test_campaign_packing () =
  let result =
    Campaign.run ~configs:packing_configs ~reduce:true ~seed:7 ~cases:2000 ()
  in
  check_int "cases" 2000 result.Campaign.cases;
  List.iter
    (fun (r : Campaign.case_report) ->
      List.iter
        (fun f ->
          Alcotest.failf "case seed %d: %s" r.Campaign.case_seed
            (Oracle.finding_to_string f))
        r.Campaign.findings)
    result.Campaign.reports;
  check "clean" true (Campaign.clean result)

(* The target-axis campaign: the same function compiled for every
   backend flavour — each with its own register width, cost tables and
   addsub availability — plus the revec re-widening pass on the widest
   one, all against the scalar reference.  Lane count must never leak
   into semantics: wider targets pack more, they must not compute
   differently. *)
let target_configs : (string * Pipeline.setting) list =
  let open Snslp_costmodel in
  let on_target name (tgt : Target.t) revec =
    ( name,
      Some
        {
          Config.snslp with
          Config.verify_each = true;
          target = tgt;
          model = Model.for_target tgt;
          revec;
        } )
  in
  [
    on_target "snslp-sse" Target.sse false;
    on_target "snslp-avx2" Target.avx2 false;
    on_target "snslp-avx512" Target.avx512 false;
    on_target "snslp-neon" Target.neon false;
    on_target "snslp-avx512-revec" Target.avx512 true;
    on_target "snslp-avx2-revec" Target.avx2 true;
  ]

let test_campaign_targets () =
  let result =
    Campaign.run ~configs:target_configs ~reduce:true ~seed:19 ~cases:1000 ()
  in
  check_int "cases" 1000 result.Campaign.cases;
  List.iter
    (fun (r : Campaign.case_report) ->
      List.iter
        (fun f ->
          Alcotest.failf "case seed %d: %s" r.Campaign.case_seed
            (Oracle.finding_to_string f))
        r.Campaign.findings)
    result.Campaign.reports;
  check "clean" true (Campaign.clean result)

(* Flip the first float add into a sub — a miscompile the size of one
   bit, applied through the test-only hook to the *optimized* function
   only, so the reference stays intact. *)
let flip_first_float_add (f : Defs.func) =
  let flipped = ref false in
  Func.iter_instrs
    (fun i ->
      if
        (not !flipped)
        && i.Defs.op = Defs.Binop Defs.Add
        && Ty.scalar_is_float (Ty.elem i.Defs.ty)
      then begin
        i.Defs.op <- Defs.Binop Defs.Sub;
        flipped := true
      end)
    f

(* End-to-end: the oracle catches the injected bug, and the reducer
   shrinks the case to a small reproducer that still triggers it,
   still verifies, and still round-trips through the textual IR. *)
let test_injected_bug_reduces () =
  (* A seed whose function keeps float adds after optimization under
     every configuration, so the injection always bites. *)
  let func = Gen.generate ~seed:2024 () in
  Fun.protect
    ~finally:(fun () -> Oracle.inject_bug := None)
    (fun () ->
      Oracle.inject_bug := Some flip_first_float_add;
      let findings = Oracle.run_case func in
      check "oracle catches the injected bug" true (findings <> []);
      let first = List.hd findings in
      let configs =
        List.filter
          (fun (name, _) -> String.equal name first.Oracle.config)
          Oracle.default_configs
      in
      let fails g = Oracle.run_case ~configs g <> [] in
      let reduced = Reduce.run ~fails func in
      check "reduced still fails" true (fails reduced);
      (match Verifier.check reduced with
      | Ok () -> ()
      | Error report -> Alcotest.failf "reduced function invalid: %s" report);
      let n = Func.num_instrs reduced in
      if n > 20 then
        Alcotest.failf "reduced reproducer still has %d instrs (want <= 20)" n;
      let text = Printer.func_to_string reduced in
      check_str "reduced reproducer round-trips" text
        (Printer.func_to_string (Ir_parser.parse text)))

(* --- Loop-aware static catches --------------------------------------------- *)

(* Drop the function's final store — on an unrolled constant-trip
   loop that is the epilogue store, the classic off-by-one unroll
   bug.  Applied to the optimized side only. *)
let drop_last_store (f : Defs.func) =
  let last = ref None in
  Func.iter_instrs (fun i -> if Instr.is_store i then last := Some i) f;
  match !last with
  | Some s -> List.iter (fun b -> Block.discard_if b (fun i -> i == s)) f.Defs.blocks
  | None -> ()

(* A dropped epilogue store must be caught *statically*: the
   validator executes the constant-trip loop concretely, so the
   missing final location is a [Static_mismatch], not just an
   interpreter diff. *)
let test_loop_injected_bug_caught_statically () =
  let func =
    Snslp_frontend.Frontend.compile_one
      {|
kernel s8(double a[], double b[], double c[], long i) {
  for (long k = 0; k < 8; k = k + 1) { c[k] = a[k] * 2.0 + b[k]; }
}
|}
  in
  Fun.protect
    ~finally:(fun () -> Oracle.inject_bug := None)
    (fun () ->
      Oracle.inject_bug := Some drop_last_store;
      let findings = Oracle.run_case func in
      check "oracle catches the dropped store" true (findings <> []);
      check "the validator catches it statically" true
        (List.exists
           (fun (fd : Oracle.finding) ->
             match fd.Oracle.kind with Oracle.Static_mismatch _ -> true | _ -> false)
           findings))

(* The loopy campaign with validation on: zero [Static_mismatch] —
   the inductive validator never disproves a correct loop
   transformation. *)
let test_loopy_campaign_no_static_mismatch () =
  let result = Campaign.run ~profile:Gen.loopy_profile ~seed:23 ~cases:300 () in
  check_int "cases" 300 result.Campaign.cases;
  List.iter
    (fun (r : Campaign.case_report) ->
      List.iter
        (fun (fd : Oracle.finding) ->
          match fd.Oracle.kind with
          | Oracle.Static_mismatch _ ->
              Alcotest.failf "case seed %d: false static mismatch: %s" r.Campaign.case_seed
                (Oracle.finding_to_string fd)
          | _ ->
              Alcotest.failf "case seed %d: %s" r.Campaign.case_seed
                (Oracle.finding_to_string fd))
        r.Campaign.findings)
    result.Campaign.reports;
  check "clean" true (Campaign.clean result)

(* Regression: campaign seed 42, case seed 42008964, reduced by
   Reduce.run to 16 instructions.  The +/- chain feeds the same CSE'd
   load of A[1] with both signs; reduction vectorization grouped the
   [+] occurrence into the vector run A[0..1] and, filtering leftovers
   by instruction id, dropped the [-] occurrence entirely — computing
   an extra +A[1].  Fixed by tracking grouped leaf *occurrences*. *)
let reduced_repro_inverse_pair =
  {|func @fuzz42008964(f64* %A, f64* %B, f64* %C, f64* %D, i64* %P, i64* %Q, i64* %R, i64* %S, i64 %i) {
entry:
  %31 = gep f64* %B, 1
  %32 = load f64 %31
  %33 = gep f64* %A, 0
  %34 = load f64 %33
  %35 = fadd f64 %32, %34
  %36 = gep f64* %A, 1
  %37 = load f64 %36
  %38 = fsub f64 %35, %37
  %39 = gep f64* %A, 1
  %40 = load f64 %39
  %41 = fadd f64 %38, %40
  %42 = gep f64* %B, 2
  %43 = load f64 %42
  %44 = fadd f64 %41, %43
  %45 = gep f64* %D, 1
  store %44, %45
  ret
}
|}

let test_regression_reduction_inverse_pair () =
  let func = Ir_parser.parse reduced_repro_inverse_pair in
  List.iter
    (fun f -> Alcotest.failf "regression resurfaced: %s" (Oracle.finding_to_string f))
    (Oracle.run_case func)

(* The reducer refuses inputs that do not fail: no vacuous minimization. *)
let test_reduce_requires_failure () =
  let func = Gen.generate ~seed:3 () in
  match Reduce.run ~fails:(fun _ -> false) func with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "Reduce.run accepted a non-failing input"

(* The per-case seed schedule must be reproducible from the campaign
   seed, so a failing case regenerates in isolation. *)
let test_case_seed_schedule () =
  let seed = 42 in
  let direct = Gen.generate ~seed:(Campaign.case_seed ~seed 17) () in
  let again = Gen.generate ~seed:(Campaign.case_seed ~seed 17) () in
  check_str "case 17 regenerates" (Printer.func_to_string direct)
    (Printer.func_to_string again)

let suite =
  [
    ( "fuzz",
      [
        Alcotest.test_case "generator validity (200 seeds)" `Quick test_generator_validity;
        Alcotest.test_case "generator determinism" `Quick test_generator_determinism;
        Alcotest.test_case "generator feeds the vectorizer" `Quick test_generator_vectorizes;
        Alcotest.test_case "campaign smoke (200 cases, all configs)" `Slow test_campaign_smoke;
        Alcotest.test_case "campaign packing axis (2000 cases)" `Slow
          test_campaign_packing;
        Alcotest.test_case "campaign target axis (1000 cases)" `Slow
          test_campaign_targets;
        Alcotest.test_case "injected bug is caught and reduced" `Quick
          test_injected_bug_reduces;
        Alcotest.test_case "loop bug caught statically" `Quick
          test_loop_injected_bug_caught_statically;
        Alcotest.test_case "loopy campaign: no static mismatch (300 cases)" `Slow
          test_loopy_campaign_no_static_mismatch;
        Alcotest.test_case "reducer rejects non-failing input" `Quick
          test_reduce_requires_failure;
        Alcotest.test_case "regression: reduction drops inverse-paired leaf" `Quick
          test_regression_reduction_inverse_pair;
        Alcotest.test_case "case seeds regenerate" `Quick test_case_seed_schedule;
      ] );
  ]

(* Interpreter unit tests: scalar and vector semantics, memory,
   control flow, error conditions. *)

open Snslp_ir
open Snslp_interp

let check = Alcotest.(check bool)
let check_f = Alcotest.(check (float 0.0))

let run_kernel src ~setup ~args_of =
  let f = Snslp_frontend.Frontend.compile_one src in
  let memory = Memory.create () in
  setup memory;
  Interp.run f ~args:(args_of f) ~memory;
  memory

let ptr pos = Rvalue.R_ptr { base = pos; offset = 0 }

let test_scalar_arith () =
  let memory =
    run_kernel
      {|
kernel k(double A[], double B[], long i) {
  A[i+0] = B[i+0] + B[i+1] * 2.0 - 1.0;
  A[i+1] = B[i+0] / B[i+1];
}
|}
      ~setup:(fun m ->
        Memory.set_float_buffer m ~arg_pos:0 (Array.make 4 0.0);
        Memory.set_float_buffer m ~arg_pos:1 [| 3.0; 4.0; 0.0; 0.0 |])
      ~args_of:(fun _ -> [| ptr 0; ptr 1; Rvalue.R_int 0L |])
  in
  let a = Memory.float_buffer memory ~arg_pos:0 in
  check_f "lane0" 10.0 a.(0);
  check_f "lane1" 0.75 a.(1)

let test_int_arith_wraps () =
  let memory =
    run_kernel {|
kernel k(long A[], long B[], long i) {
  A[i] = B[i] * B[i+1] + 1;
}
|}
      ~setup:(fun m ->
        Memory.set_int_buffer m ~arg_pos:0 (Array.make 4 0L);
        Memory.set_int_buffer m ~arg_pos:1 [| Int64.max_int; 2L; 0L; 0L |])
      ~args_of:(fun _ -> [| ptr 0; ptr 1; Rvalue.R_int 0L |])
  in
  let a = Memory.int_buffer memory ~arg_pos:0 in
  check "wraps like int64" true (Int64.equal a.(0) (Int64.add (Int64.mul Int64.max_int 2L) 1L))

let test_control_flow () =
  let memory =
    run_kernel
      {|
kernel k(double A[], long i) {
  if (i < 2) { A[i] = 1.0; } else { A[i] = 2.0; }
  A[i+4] = 9.0;
}
|}
      ~setup:(fun m -> Memory.set_float_buffer m ~arg_pos:0 (Array.make 8 0.0))
      ~args_of:(fun _ -> [| ptr 0; Rvalue.R_int 3L |])
  in
  let a = Memory.float_buffer memory ~arg_pos:0 in
  check_f "else branch" 2.0 a.(3);
  check_f "join executes" 9.0 a.(7)

let test_f32_rounding () =
  (* 0.1 is inexact; f32 must round differently from f64.  Loads round
     on read, so each operand is already f32 before the add. *)
  let memory =
    run_kernel {|
kernel k(float A[], float B[], long i) {
  A[i] = B[i] + B[i+1];
}
|}
      ~setup:(fun m ->
        Memory.set_float_buffer m ~arg_pos:0 (Array.make 4 0.0);
        Memory.set_float_buffer m ~arg_pos:1 [| 0.1; 0.2; 0.0; 0.0 |])
      ~args_of:(fun _ -> [| ptr 0; ptr 1; Rvalue.R_int 0L |])
  in
  let a = Memory.float_buffer memory ~arg_pos:0 in
  check "f32 rounded" true
    (a.(0) = Rvalue.round_f32 (Rvalue.round_f32 0.1 +. Rvalue.round_f32 0.2))

let test_vector_ops_direct () =
  (* Hand-build vector IR and check lane-wise semantics incl. the
     alternating opcode and shuffles. *)
  let f = Func.create ~name:"v" ~args:[ ("A", Ty.ptr Ty.F64) ] in
  let entry = Func.add_block f "entry" in
  let b = Builder.create f ~at:entry in
  let a = Defs.Arg (Func.arg f 0) in
  let v1 = Builder.vload b ~lanes:2 a in
  let g2 = Builder.gep b a (Value.const_int 2) in
  let v2 = Builder.vload b ~lanes:2 (Instr.value g2) in
  let alt = Builder.alt_binop b [| Defs.Sub; Defs.Add |] (Instr.value v1) (Instr.value v2) in
  let rev = Builder.shuffle b (Instr.value alt) (Defs.Undef (Ty.vector ~lanes:2 Ty.F64)) [| 1; 0 |] in
  let g4 = Builder.gep b a (Value.const_int 4) in
  ignore (Builder.store b (Instr.value rev) (Instr.value g4));
  let x0 = Builder.extractelement b (Instr.value alt) 0 in
  let ins = Builder.insertelement b (Defs.Undef (Ty.vector ~lanes:2 Ty.F64)) (Instr.value x0) 1 in
  let x1 = Builder.extractelement b (Instr.value ins) 1 in
  let g6 = Builder.gep b a (Value.const_int 6) in
  ignore (Builder.store b (Instr.value x1) (Instr.value g6));
  Builder.ret b;
  Verifier.verify_exn f;
  let memory = Memory.create () in
  Memory.set_float_buffer memory ~arg_pos:0 [| 10.0; 20.0; 1.0; 2.0; 0.0; 0.0; 0.0; 0.0 |];
  Interp.run f ~args:[| ptr 0 |] ~memory;
  let buf = Memory.float_buffer memory ~arg_pos:0 in
  (* alt = [10-1; 20+2] = [9; 22]; reversed stored at 4. *)
  check_f "rev lane0" 22.0 buf.(4);
  check_f "rev lane1" 9.0 buf.(5);
  check_f "extract/insert roundtrip" 9.0 buf.(6)

let test_out_of_bounds () =
  check "oob traps" true
    (try
       ignore
         (run_kernel "kernel k(double A[], long i) { A[i] = 1.0; }"
            ~setup:(fun m -> Memory.set_float_buffer m ~arg_pos:0 (Array.make 2 0.0))
            ~args_of:(fun _ -> [| ptr 0; Rvalue.R_int 5L |]));
       false
     with Memory.Out_of_bounds _ -> true)

let test_arg_count_mismatch () =
  let f = Snslp_frontend.Frontend.compile_one "kernel k(double A[], long i) { A[i] = 1.0; }" in
  check "arity checked" true
    (try
       Interp.run f ~args:[| ptr 0 |] ~memory:(Memory.create ());
       false
     with Interp.Runtime_error _ -> true)

let test_memory_snapshot_equal () =
  let m = Memory.create () in
  Memory.set_float_buffer m ~arg_pos:0 [| 1.0; 2.0 |];
  Memory.set_int_buffer m ~arg_pos:1 [| 3L |];
  let s = Memory.snapshot m in
  check "snapshot equal" true (Memory.equal m s);
  (Memory.float_buffer m ~arg_pos:0).(0) <- 9.0;
  check "diverges after write" false (Memory.equal m s);
  check "rel diff sees it" true (Memory.max_rel_diff m s > 0.1)

let test_memory_read_symmetry () =
  (* Reads mirror writes: f32 loads round, and the element type must
     match the buffer kind in both directions. *)
  let m = Memory.create () in
  Memory.set_float_buffer m ~arg_pos:0 [| 0.1 |];
  Memory.set_int_buffer m ~arg_pos:1 [| 7L |];
  (match Memory.read m ~elem:Ty.F32 ~base:0 ~off:0 with
  | Rvalue.R_float f -> check "f32 load rounds" true (f = Rvalue.round_f32 0.1)
  | _ -> Alcotest.fail "expected a float");
  (match Memory.read m ~elem:Ty.F64 ~base:0 ~off:0 with
  | Rvalue.R_float f -> check "f64 load exact" true (f = 0.1)
  | _ -> Alcotest.fail "expected a float");
  check "int load from float buffer rejected" true
    (try
       ignore (Memory.read m ~elem:Ty.I64 ~base:0 ~off:0);
       false
     with Invalid_argument _ -> true);
  check "float load from int buffer rejected" true
    (try
       ignore (Memory.read m ~elem:Ty.F64 ~base:1 ~off:0);
       false
     with Invalid_argument _ -> true)

let test_memory_restore () =
  let m = Memory.create () in
  Memory.set_float_buffer m ~arg_pos:0 [| 1.0; 2.0 |];
  Memory.set_int_buffer m ~arg_pos:1 [| 3L |];
  let template = Memory.snapshot m in
  (Memory.float_buffer m ~arg_pos:0).(0) <- 9.0;
  (Memory.int_buffer m ~arg_pos:1).(0) <- -1L;
  Memory.restore ~template m;
  check "restore resets to the template" true (Memory.equal template m)

let test_step_budget () =
  (* An instruction-dense kernel with a tiny budget trips the guard. *)
  let f =
    Snslp_frontend.Frontend.compile_one
      "kernel k(double A[], long i) { A[i] = A[i] + A[i+1] + A[i+2] + A[i+3]; }"
  in
  let memory = Memory.create () in
  Memory.set_float_buffer memory ~arg_pos:0 (Array.make 8 1.0);
  check "budget enforced" true
    (try
       Interp.run ~max_steps:3 f ~args:[| ptr 0; Rvalue.R_int 0L |] ~memory;
       false
     with Interp.Runtime_error _ -> true)

let suite =
  [
    ( "interp",
      [
        Alcotest.test_case "scalar arithmetic" `Quick test_scalar_arith;
        Alcotest.test_case "int64 wrap-around" `Quick test_int_arith_wraps;
        Alcotest.test_case "control flow" `Quick test_control_flow;
        Alcotest.test_case "f32 rounding" `Quick test_f32_rounding;
        Alcotest.test_case "vector operations" `Quick test_vector_ops_direct;
        Alcotest.test_case "out of bounds" `Quick test_out_of_bounds;
        Alcotest.test_case "arity mismatch" `Quick test_arg_count_mismatch;
        Alcotest.test_case "memory snapshot/equal" `Quick test_memory_snapshot_equal;
        Alcotest.test_case "memory read symmetry" `Quick test_memory_read_symmetry;
        Alcotest.test_case "memory restore" `Quick test_memory_restore;
        Alcotest.test_case "step budget" `Quick test_step_budget;
      ] );
  ]

(* Unit tests for the IR substrate: types, values, builder, printer,
   verifier, cloning, dominance. *)

open Snslp_ir

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* A tiny function: A[i] = B[i] + C[i]. *)
let sample_func () =
  let f =
    Func.create ~name:"sample"
      ~args:
        [
          ("A", Ty.ptr Ty.F64);
          ("B", Ty.ptr Ty.F64);
          ("C", Ty.ptr Ty.F64);
          ("i", Ty.i64);
        ]
  in
  let entry = Func.add_block f "entry" in
  let b = Builder.create f ~at:entry in
  let arg n = Defs.Arg (Func.arg f n) in
  let gb = Builder.gep b (arg 1) (arg 3) in
  let gc = Builder.gep b (arg 2) (arg 3) in
  let lb = Builder.load b (Instr.value gb) in
  let lc = Builder.load b (Instr.value gc) in
  let sum = Builder.add b (Instr.value lb) (Instr.value lc) in
  let ga = Builder.gep b (arg 0) (arg 3) in
  let _st = Builder.store b (Instr.value sum) (Instr.value ga) in
  Builder.ret b;
  f

let test_ty_basics () =
  check "int" true (Ty.is_int Ty.i64);
  check "not float" false (Ty.is_float Ty.i64);
  check "float" true (Ty.is_float Ty.f32);
  check_int "lanes of scalar" 1 (Ty.lanes Ty.f64);
  check_int "lanes of vector" 4 (Ty.lanes (Ty.vector ~lanes:4 Ty.F32));
  check_int "bits of vector" 128 (Ty.bits (Ty.vector ~lanes:2 Ty.F64));
  check_str "vector syntax" "<2 x f64>" (Ty.to_string (Ty.vector ~lanes:2 Ty.F64));
  check_str "pointer syntax" "f64*" (Ty.to_string (Ty.ptr Ty.F64));
  check "vector eq" true (Ty.equal (Ty.vector ~lanes:2 Ty.F64) (Ty.vector ~lanes:2 Ty.F64));
  check "vector neq lanes" false
    (Ty.equal (Ty.vector ~lanes:2 Ty.F64) (Ty.vector ~lanes:4 Ty.F64));
  Alcotest.check_raises "lanes < 2 rejected" (Invalid_argument "Ty.vector: lanes must be >= 2")
    (fun () -> ignore (Ty.vector ~lanes:1 Ty.F64))

let test_lit () =
  check "int lit eq" true (Lit.equal (Lit.int 42) (Lit.int64 42L));
  check "float lit eq" true (Lit.equal (Lit.float 1.5) (Lit.float 1.5));
  check "nan lit eq (bitwise)" true (Lit.equal (Lit.float nan) (Lit.float nan));
  check "int/float differ" false (Lit.equal (Lit.int 1) (Lit.float 1.0));
  check "matches int ty" true (Lit.matches_ty (Lit.int 1) Ty.i64);
  check "int lit does not match float ty" false (Lit.matches_ty (Lit.int 1) Ty.f64)

let test_value () =
  let c1 = Value.const_int 7 in
  let c2 = Value.const_int 7 in
  check "structural const equality" true (Value.equal c1 c2);
  check "different consts" false (Value.equal c1 (Value.const_int 8));
  check_str "const name" "7" (Value.name c1);
  Alcotest.check_raises "const_int rejects float ty"
    (Invalid_argument "Value.const_int: not an int type") (fun () ->
      ignore (Value.const_int ~ty:Ty.f64 1))

let test_builder_and_printer () =
  let f = sample_func () in
  Verifier.verify_exn f;
  let text = Printer.func_to_string f in
  check "has header" true
    (String.length text > 0
    && String.sub text 0 12 = "func @sample");
  let has_sub s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  check "prints fadd" true (has_sub text "fadd");
  check "prints load" true (has_sub text "load");
  check "prints store" true (has_sub text "store");
  check "prints ret" true (has_sub text "ret")

let test_builder_type_errors () =
  let f = Func.create ~name:"t" ~args:[ ("x", Ty.f64); ("n", Ty.i64) ] in
  let entry = Func.add_block f "entry" in
  let b = Builder.create f ~at:entry in
  let x = Defs.Arg (Func.arg f 0) and n = Defs.Arg (Func.arg f 1) in
  Alcotest.check_raises "mixed binop types"
    (Invalid_argument "Builder.binop: operand types differ") (fun () ->
      ignore (Builder.add b x n));
  Alcotest.check_raises "int division rejected"
    (Invalid_argument "Builder.binop: integer division is not part of the IR") (fun () ->
      ignore (Builder.div b n n))

let test_uses_and_rauw () =
  let f = sample_func () in
  let entry = Func.entry f in
  let instrs = Block.instrs entry in
  let lb = List.nth instrs 2 in
  let sum = List.nth instrs 4 in
  check_int "load has one use" 1 (List.length (Func.uses_of f (Instr.value lb)));
  check "sum uses load" true (Value.equal (Instr.operand sum 0) (Instr.value lb));
  (* Replace the load with a constant and check rewiring. *)
  Func.replace_all_uses f ~old_v:(Instr.value lb) ~new_v:(Value.const_float 1.0);
  check_int "load now unused" 0 (List.length (Func.uses_of f (Instr.value lb)));
  check "sum rewired" true (Value.equal (Instr.operand sum 0) (Value.const_float 1.0));
  check "use-lists consistent after replace" true
    (Func.check_use_lists f = Ok ());
  Func.erase_instr f lb;
  check_int "erased from block" 6 (List.length (Block.instrs entry));
  check "use-lists consistent after erase" true (Func.check_use_lists f = Ok ())

let test_erase_with_uses_fails () =
  let f = sample_func () in
  let entry = Func.entry f in
  let lb = List.nth (Block.instrs entry) 2 in
  check "erase of used instr raises" true
    (try
       Func.erase_instr f lb;
       false
     with Invalid_argument _ -> true)

let test_clone_independent () =
  let f = sample_func () in
  let g = Func.clone f in
  check_int "same instr count" (Func.num_instrs f) (Func.num_instrs g);
  check_str "same text" (Printer.func_to_string f) (Printer.func_to_string g);
  (* Mutating the clone leaves the original alone. *)
  let ge = Func.entry g in
  let first = List.hd (Block.instrs ge) in
  Func.replace_all_uses g ~old_v:(Instr.value first) ~new_v:(Defs.Arg (Func.arg g 1));
  Func.erase_instr g first;
  check "original unchanged" true (Func.num_instrs f = Func.num_instrs g + 1);
  (* Clones carry their own use-lists: mutating one must leave both
     self-consistent. *)
  check "clone use-lists consistent" true (Func.check_use_lists g = Ok ());
  check "original use-lists consistent" true (Func.check_use_lists f = Ok ())

let test_verifier_catches_bad_ir () =
  let f = Func.create ~name:"bad" ~args:[ ("x", Ty.f64) ] in
  let entry = Func.add_block f "entry" in
  let x = Defs.Arg (Func.arg f 0) in
  (* Hand-build an ill-typed instruction, bypassing the builder. *)
  let i = Func.fresh_instr f (Defs.Binop Defs.Add) Ty.i64 [| x; x |] in
  Block.append entry i;
  Block.set_terminator entry Defs.Ret;
  check "verifier reports" true (Verifier.verify f <> []);
  (* Unterminated blocks are reported too. *)
  let g = Func.create ~name:"unterm" ~args:[] in
  let _ = Func.add_block g "entry" in
  check "unterminated reported" true (Verifier.verify g <> [])

let test_verifier_use_before_def () =
  let f = Func.create ~name:"ubd" ~args:[ ("x", Ty.f64) ] in
  let entry = Func.add_block f "entry" in
  let x = Defs.Arg (Func.arg f 0) in
  let a = Func.fresh_instr f (Defs.Binop Defs.Add) Ty.f64 [| x; x |] in
  let b = Func.fresh_instr f (Defs.Binop Defs.Mul) Ty.f64 [| Defs.Instr a; x |] in
  (* b placed before a. *)
  Block.append entry b;
  Block.append entry a;
  Block.set_terminator entry Defs.Ret;
  check "use-before-def reported" true (Verifier.verify f <> [])

let test_dominance () =
  let f = Func.create ~name:"dom" ~args:[ ("c", Ty.i64) ] in
  let entry = Func.add_block f "entry" in
  let then_b = Func.add_block f "then" in
  let join = Func.add_block f "join" in
  Block.set_terminator entry (Defs.Cond_br (Defs.Arg (Func.arg f 0), then_b, join));
  Block.set_terminator then_b (Defs.Br join);
  Block.set_terminator join Defs.Ret;
  let dom = Dominance.compute f in
  check "entry dominates all" true
    (Dominance.dominates dom entry then_b && Dominance.dominates dom entry join);
  check "then does not dominate join" false (Dominance.dominates dom then_b join);
  check "self-domination" true (Dominance.dominates dom join join)

let test_block_ops () =
  let f = sample_func () in
  let entry = Func.entry f in
  let n = Block.length entry in
  check_int "length" 7 n;
  let first = List.hd (Block.instrs entry) in
  let fresh = Func.fresh_instr f (Defs.Binop Defs.Add) Ty.i64
      [| Value.const_int 1; Value.const_int 2 |] in
  Block.insert_before entry ~anchor:first fresh;
  check "inserted at head" true (Instr.equal (List.hd (Block.instrs entry)) fresh);
  Block.remove entry fresh;
  check_int "removed" n (Block.length entry);
  (* Reorder must be a permutation. *)
  check "reorder rejects non-permutation" true
    (try
       Block.reorder entry [];
       false
     with Invalid_argument _ -> true);
  Block.reorder entry (List.rev (Block.instrs entry));
  check_int "reorder applied" n (Block.length entry)

let suite =
  [
    ( "ir",
      [
        Alcotest.test_case "ty basics" `Quick test_ty_basics;
        Alcotest.test_case "literals" `Quick test_lit;
        Alcotest.test_case "values" `Quick test_value;
        Alcotest.test_case "builder and printer" `Quick test_builder_and_printer;
        Alcotest.test_case "builder type errors" `Quick test_builder_type_errors;
        Alcotest.test_case "uses and rauw" `Quick test_uses_and_rauw;
        Alcotest.test_case "erase with uses fails" `Quick test_erase_with_uses_fails;
        Alcotest.test_case "clone independence" `Quick test_clone_independent;
        Alcotest.test_case "verifier catches bad ir" `Quick test_verifier_catches_bad_ir;
        Alcotest.test_case "verifier use-before-def" `Quick test_verifier_use_before_def;
        Alcotest.test_case "dominance" `Quick test_dominance;
        Alcotest.test_case "block operations" `Quick test_block_ops;
      ] );
  ]

(* Textual IR round-trip tests: print → parse → print must be the
   identity, for scalar code, vector code produced by the vectorizer,
   and control flow. *)

open Snslp_ir
open Snslp_passes
open Snslp_vectorizer

let check = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let roundtrip (f : Defs.func) =
  let text = Printer.func_to_string f in
  let f' = Ir_parser.parse text in
  check_str "print/parse/print fixpoint" text (Printer.func_to_string f')

let test_scalar_roundtrip () =
  roundtrip
    (Snslp_frontend.Frontend.compile_one
       {|
kernel k(double A[], double B[], double s, long i) {
  A[i+0] = B[i+0] * s + 1.5;
  A[i+1] = B[i+1] - 2.0;
}
|})

let test_vector_roundtrip () =
  let k = Option.get (Snslp_kernels.Registry.find "motiv_leaf") in
  let f = Snslp_frontend.Frontend.compile_one k.Snslp_kernels.Registry.source in
  let result = Pipeline.run ~setting:(Some Config.snslp) f in
  roundtrip result.Pipeline.func

let test_gather_and_alt_roundtrip () =
  (* Code with alternating ops, splats, gathers, extracts and
     shuffles. *)
  let f =
    Snslp_frontend.Frontend.compile_one
      {|
kernel k(double A[], double B[], double C[], long i) {
  A[i+0] = B[i+0] + C[2*i+0] - B[i+0]*C[2*i+0];
  A[i+1] = B[i+1] - C[2*i+9] + B[i+1]*C[2*i+9];
}
|}
  in
  let result = Pipeline.run ~setting:(Some Config.snslp) f in
  roundtrip result.Pipeline.func

let test_control_flow_roundtrip () =
  roundtrip
    (Snslp_frontend.Frontend.compile_one
       {|
kernel k(double A[], long i) {
  if (i < 4) { A[i] = 1.0; } else { A[i+1] = 2.0; }
  A[i+2] = 3.0;
}
|})

let test_all_registry_kernels_roundtrip () =
  List.iter
    (fun (k : Snslp_kernels.Registry.t) ->
      List.iter
        (fun setting ->
          let f = Snslp_frontend.Frontend.compile_one k.Snslp_kernels.Registry.source in
          let result = Pipeline.run ~setting f in
          roundtrip result.Pipeline.func)
        [ None; Some Config.snslp ])
    Snslp_kernels.Registry.all

let test_parsed_ir_executes () =
  (* The parsed function must behave identically under the
     interpreter. *)
  let k = Option.get (Snslp_kernels.Registry.find "gromacs_force") in
  let wl = Snslp_kernels.Workload.prepare ~iters:16 k in
  let sn = Pipeline.run ~setting:(Some Config.snslp) wl.Snslp_kernels.Workload.func in
  let parsed = Ir_parser.parse (Printer.func_to_string sn.Pipeline.func) in
  let m1 = Snslp_kernels.Workload.run_interp wl sn.Pipeline.func in
  let m2 = Snslp_kernels.Workload.run_interp wl parsed in
  check "parsed IR computes the same memory" true (Snslp_interp.Memory.equal m1 m2)

let test_generated_functions_roundtrip () =
  (* Round-trip the fuzzer's generated functions, both raw and after
     the full SN-SLP pipeline — a property test over the whole space
     of shapes the generator can emit. *)
  for seed = 0 to 49 do
    let f = Snslp_fuzzer.Gen.generate ~seed () in
    roundtrip f;
    let result = Pipeline.run ~setting:(Some Config.snslp) f in
    roundtrip result.Pipeline.func
  done

let test_parse_errors () =
  let bad src =
    try
      ignore (Ir_parser.parse src);
      false
    with Ir_parser.Parse_error _ -> true
  in
  check "garbage" true (bad "hello");
  check "missing brace" true (bad "func @f(f64* %A) {\nentry:\n  ret\n");
  check "unknown value" true
    (bad "func @f(f64* %A) {\nentry:\n  %0 = load f64 %nope\n  ret\n}\n");
  check "unknown mnemonic" true
    (bad "func @f(f64* %A) {\nentry:\n  %0 = frobnicate f64 %A\n  ret\n}\n");
  check "duplicate name" true
    (bad
       "func @f(f64* %A, i64 %i) {\nentry:\n  %0 = gep f64* %A, %i\n  %0 = gep f64* %A, \
        %i\n  ret\n}\n");
  check "ill-typed rejected by verifier" true
    (bad "func @f(f64* %A, i64 %i) {\nentry:\n  %0 = add i64 %A, %i\n  ret\n}\n");
  check "unknown block" true
    (bad "func @f(i64 %i) {\nentry:\n  br %nowhere\n}\n")

let test_parse_branch_forms () =
  let src =
    "func @f(i64 %i) {\n\
     entry:\n\
    \  %0 = icmp.lt i32 %i, 4\n\
    \  br %0, %then1, %join2\n\
     then1:\n\
    \  br %join2\n\
     join2:\n\
    \  ret\n\
     }\n"
  in
  let f = Ir_parser.parse src in
  Alcotest.(check int) "three blocks" 3 (List.length (Func.blocks f));
  roundtrip f

let suite =
  [
    ( "ir-parser",
      [
        Alcotest.test_case "scalar roundtrip" `Quick test_scalar_roundtrip;
        Alcotest.test_case "vector roundtrip" `Quick test_vector_roundtrip;
        Alcotest.test_case "gather/alt roundtrip" `Quick test_gather_and_alt_roundtrip;
        Alcotest.test_case "control flow roundtrip" `Quick test_control_flow_roundtrip;
        Alcotest.test_case "registry kernels roundtrip" `Quick
          test_all_registry_kernels_roundtrip;
        Alcotest.test_case "parsed IR executes" `Quick test_parsed_ir_executes;
        Alcotest.test_case "generated functions roundtrip" `Quick
          test_generated_functions_roundtrip;
        Alcotest.test_case "parse errors" `Quick test_parse_errors;
        Alcotest.test_case "branch forms" `Quick test_parse_branch_forms;
      ] );
  ]

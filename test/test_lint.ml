(* Tests for lib/lint: the dataflow engine instances, the checker
   suite, the translation validator, the vectorizer graph invariants,
   and the lint/validation sweep over every evaluation asset. *)

open Snslp_ir
open Snslp_lint
module Oracle = Snslp_fuzzer.Oracle
module Gen = Snslp_fuzzer.Gen
module Pipeline = Snslp_passes.Pipeline
module Config = Snslp_vectorizer.Config
module Loops = Snslp_loops.Loops

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let compile = Snslp_frontend.Frontend.compile_one

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* --- Dataflow: liveness ---------------------------------------------------- *)

(* entry:  %g = gep A, 0
           %x = load %g
           %y = fadd %x, %x      (stored: live)
           %z = fadd %x, %x      (unused: dead)
           store %y, %g          *)
let test_liveness_straightline () =
  let f = Func.create ~name:"lv" ~args:[ ("A", Ty.ptr Ty.F64) ] in
  let entry = Func.add_block f "entry" in
  let b = Builder.create f ~at:entry in
  let a = Defs.Arg (Func.arg f 0) in
  let g = Builder.gep b a (Value.const_int 0) in
  let x = Builder.load b (Instr.value g) in
  let y = Builder.add b (Instr.value x) (Instr.value x) in
  let z = Builder.add b (Instr.value x) (Instr.value x) in
  ignore (Builder.store b (Instr.value y) (Instr.value g));
  Builder.ret b;
  let sol = Liveness.compute f in
  (* Nothing is live out of the function... *)
  check_int "live-out empty" 0 (Liveness.S.cardinal (Liveness.live_out sol entry));
  (* ...and on entry only the argument is. *)
  check "arg live on entry" true
    (Liveness.S.mem (Liveness.arg_key (Func.arg f 0)) (Liveness.live_in sol entry));
  check "x not live on entry" false
    (Liveness.S.mem (Liveness.instr_key x) (Liveness.live_in sol entry));
  (* Below the definition of %y, %y and %g are live (the store reads
     both), %z is not. *)
  let states = Liveness.instr_states sol entry in
  let _, live_below_y, _ =
    List.find (fun (i, _, _) -> i == y) states
  in
  check "y live below its def" true (Liveness.S.mem (Liveness.instr_key y) live_below_y);
  check "g live below y" true (Liveness.S.mem (Liveness.instr_key g) live_below_y);
  check "z dead below y" false (Liveness.S.mem (Liveness.instr_key z) live_below_y);
  (* The dead-instruction view agrees with DCE's verdict. *)
  (match Liveness.dead sol f with
  | [ d ] -> check "only z is dead" true (d == z)
  | l -> Alcotest.failf "expected exactly %%z dead, got %d instrs" (List.length l))

(* Liveness across a diamond: a value defined in the entry block and
   used in only one arm must be live into that arm and not the other. *)
let test_liveness_diamond () =
  let f =
    compile
      {|
kernel d(double A[], double B[], long i) {
  if (i < 4) { A[i] = B[i] * 2.0; } else { A[0] = 1.0; }
}
|}
  in
  let sol = Liveness.compute f in
  let block name = List.find (fun (b : Defs.block) -> b.Defs.bname = name) f.Defs.blocks in
  let uses_b blk =
    Liveness.S.exists
      (fun k -> k = Liveness.arg_key (Func.arg f 1))
      (Liveness.live_in sol blk)
  in
  let arms =
    List.filter
      (fun (b : Defs.block) -> b != Func.entry f && Block.successors b <> [])
      f.Defs.blocks
  in
  (match arms with
  | [ _; _ ] -> ()
  | _ -> Alcotest.fail "expected a two-arm diamond");
  check "B live into exactly one arm" true
    (List.length (List.filter uses_b arms) = 1);
  ignore block

(* --- Dataflow: reaching stores --------------------------------------------- *)

let test_reaching_stores () =
  let f = Func.create ~name:"rs" ~args:[ ("A", Ty.ptr Ty.F64) ] in
  let entry = Func.add_block f "entry" in
  let b = Builder.create f ~at:entry in
  let a = Defs.Arg (Func.arg f 0) in
  let g0 = Builder.gep b a (Value.const_int 0) in
  let g1 = Builder.gep b a (Value.const_int 1) in
  let x = Builder.load b (Instr.value g0) in
  let s1 = Builder.store b (Instr.value x) (Instr.value g0) in
  let s2 = Builder.store b (Instr.value x) (Instr.value g0) in
  let s3 = Builder.store b (Instr.value x) (Instr.value g1) in
  Builder.ret b;
  let sol = Reaching.compute f in
  let out = Reaching.reaching_out sol entry in
  check "overwritten store killed" false (Reaching.S.mem s1.Defs.iid out);
  check "covering store reaches" true (Reaching.S.mem s2.Defs.iid out);
  check "disjoint store reaches" true (Reaching.S.mem s3.Defs.iid out);
  check "iids resolve back to stores" true
    (match Reaching.store_of sol s2.Defs.iid with Some i -> i == s2 | None -> false)

(* --- Dataflow: available expressions --------------------------------------- *)

let test_avail_load_killed_by_store () =
  let f = Func.create ~name:"av" ~args:[ ("A", Ty.ptr Ty.F64) ] in
  let entry = Func.add_block f "entry" in
  let b = Builder.create f ~at:entry in
  let a = Defs.Arg (Func.arg f 0) in
  let g0 = Builder.gep b a (Value.const_int 0) in
  let g0' = Builder.gep b a (Value.const_int 0) in
  let x = Builder.load b (Instr.value g0) in
  ignore (Builder.store b (Instr.value x) (Instr.value g0));
  let x' = Builder.load b (Instr.value g0) in
  ignore (Builder.store b (Instr.value x') (Instr.value g0'));
  Builder.ret b;
  let sol = Avail.compute f in
  let redundant = Avail.redundant sol f in
  (* The repeated gep is available again; the reload is not (the store
     killed every load expression). *)
  check "gep is redundant" true (List.memq g0' redundant);
  check "reload after store is not redundant" false (List.memq x' redundant)

(* --- Checkers -------------------------------------------------------------- *)

let test_check_undef () =
  let f = Func.create ~name:"ud" ~args:[ ("x", Ty.f64) ] in
  let entry = Func.add_block f "entry" in
  let b = Builder.create f ~at:entry in
  let x = Defs.Arg (Func.arg f 0) in
  ignore (Builder.add b x (Defs.Undef Ty.f64));
  Builder.ret b;
  match Checks.undef_uses f with
  | [ fd ] ->
      check "severity" true (Finding.is_error fd);
      check "where is the pretty-printed instr" true
        (String.length fd.Finding.where > 0
        && String.sub fd.Finding.where 0 1 = "%")
  | l -> Alcotest.failf "expected 1 undef finding, got %d" (List.length l)

let test_check_dead_store () =
  let f = Func.create ~name:"ds" ~args:[ ("A", Ty.ptr Ty.F64) ] in
  let entry = Func.add_block f "entry" in
  let b = Builder.create f ~at:entry in
  let a = Defs.Arg (Func.arg f 0) in
  let g0 = Builder.gep b a (Value.const_int 0) in
  let x = Builder.load b (Instr.value g0) in
  ignore (Builder.store b (Instr.value x) (Instr.value g0));
  ignore (Builder.store b (Instr.value x) (Instr.value g0));
  Builder.ret b;
  check_int "one dead store" 1 (List.length (Checks.dead_stores f));
  (* An intervening load of the same cell keeps the first store alive. *)
  let f2 = Func.create ~name:"ds2" ~args:[ ("A", Ty.ptr Ty.F64) ] in
  let entry2 = Func.add_block f2 "entry" in
  let b2 = Builder.create f2 ~at:entry2 in
  let a2 = Defs.Arg (Func.arg f2 0) in
  let h0 = Builder.gep b2 a2 (Value.const_int 0) in
  let y = Builder.load b2 (Instr.value h0) in
  ignore (Builder.store b2 (Instr.value y) (Instr.value h0));
  let y' = Builder.load b2 (Instr.value h0) in
  ignore (Builder.store b2 (Instr.value y') (Instr.value h0));
  Builder.ret b2;
  check_int "intervening load keeps it live" 0 (List.length (Checks.dead_stores f2))

let test_check_bounds () =
  let f = Func.create ~name:"ob" ~args:[ ("A", Ty.ptr Ty.F64) ] in
  let entry = Func.add_block f "entry" in
  let b = Builder.create f ~at:entry in
  let a = Defs.Arg (Func.arg f 0) in
  let gneg = Builder.gep b a (Value.const_int (-1)) in
  let x = Builder.load b (Instr.value gneg) in
  let gpast = Builder.gep b a (Value.const_int 6) in
  ignore (Builder.store b (Instr.value x) (Instr.value gpast));
  Builder.ret b;
  check_int "negative index alone" 1 (List.length (Checks.bounds f));
  check_int "negative index + past the end" 2 (List.length (Checks.bounds ~bound:4 f));
  check_int "large enough buffer" 1 (List.length (Checks.bounds ~bound:16 f))

let test_check_memory_kind () =
  let f = Func.create ~name:"mk" ~args:[ ("A", Ty.ptr Ty.F64) ] in
  let entry = Func.add_block f "entry" in
  let b = Builder.create f ~at:entry in
  let a = Defs.Arg (Func.arg f 0) in
  let g0 = Builder.gep b a (Value.const_int 0) in
  let x = Builder.load b (Instr.value g0) in
  ignore (Builder.store b (Instr.value x) (Instr.value g0));
  Builder.ret b;
  check_int "well-typed access is silent" 0 (List.length (Checks.memory_kinds f));
  (* Mutate the load into an integer access to the float buffer — the
     shape Memory.read rejects at runtime.  The store forwarding the
     retyped value is flagged too. *)
  x.Defs.ty <- Ty.i64;
  (match Checks.memory_kinds f with
  | [ fd; fd' ] ->
      check "cross-kind load is an error" true (Finding.is_error fd);
      check "cross-kind store is an error" true (Finding.is_error fd')
  | l -> Alcotest.failf "expected 2 memory-kind findings, got %d" (List.length l));
  (* A same-kind width change is only a warning. *)
  x.Defs.ty <- Ty.f32;
  match Checks.memory_kinds f with
  | fd :: rest ->
      check "width mismatch is a warning" false (Finding.is_error fd);
      check "no error among width findings" true (Finding.errors rest = [])
  | [] -> Alcotest.fail "expected width-mismatch findings"

(* --- Verifier messages carry the pretty-printed instruction ---------------- *)

let test_verifier_where_pretty () =
  let f = Func.create ~name:"vw" ~args:[ ("P", Ty.ptr Ty.I64) ] in
  let entry = Func.add_block f "entry" in
  let b = Builder.create f ~at:entry in
  let p = Defs.Arg (Func.arg f 0) in
  let x = Builder.load b p in
  Builder.ret b;
  (* Retype the load into a float read through the i64 pointer: the
     builder refuses to construct this, so mutate after the fact. *)
  x.Defs.ty <- Ty.f64;
  match Verifier.verify f with
  | [] -> Alcotest.fail "expected a verifier error"
  | e :: _ ->
      check "where is the whole instruction" true
        (String.equal e.Verifier.where (Instr.to_string x))

(* --- The translation validator --------------------------------------------- *)

let build_store_of ~name emit =
  let f =
    Func.create ~name ~args:[ ("A", Ty.ptr Ty.F64); ("B", Ty.ptr Ty.F64) ]
  in
  let entry = Func.add_block f "entry" in
  let b = Builder.create f ~at:entry in
  let a = Defs.Arg (Func.arg f 0) in
  let load_a k =
    Instr.value (Builder.load b (Instr.value (Builder.gep b a (Value.const_int k))))
  in
  let out = Builder.gep b (Defs.Arg (Func.arg f 1)) (Value.const_int 0) in
  let v = emit b load_a in
  ignore (Builder.store b v (Instr.value out));
  Builder.ret b;
  f

let test_validate_reassociation () =
  (* (a+b)+c vs (c+a)+b: same signed multiset, Valid. *)
  let pre =
    build_store_of ~name:"re1" (fun b la ->
        let x = Builder.add b (la 0) (la 1) in
        Instr.value (Builder.add b (Instr.value x) (la 2)))
  in
  let post =
    build_store_of ~name:"re2" (fun b la ->
        let x = Builder.add b (la 2) (la 0) in
        Instr.value (Builder.add b (Instr.value x) (la 1)))
  in
  match Validate.compare_funcs pre post with
  | Validate.Valid -> ()
  | v -> Alcotest.failf "expected valid, got %s" (Validate.verdict_to_string v)

let test_validate_inverse_cancellation () =
  (* a + b - b normalises to a: the inverse-element pair cancels. *)
  let pre =
    build_store_of ~name:"iv1" (fun b la ->
        let x = Builder.add b (la 0) (la 1) in
        Instr.value (Builder.sub b (Instr.value x) (la 1)))
  in
  let post = build_store_of ~name:"iv2" (fun _ la -> la 0) in
  match Validate.compare_funcs pre post with
  | Validate.Valid -> ()
  | v -> Alcotest.failf "expected valid, got %s" (Validate.verdict_to_string v)

let test_validate_mul_div_inverse () =
  (* (a*b)/b normalises to a: the multiplicative inverse pair. *)
  let pre =
    build_store_of ~name:"md1" (fun b la ->
        let x = Builder.mul b (la 0) (la 1) in
        Instr.value (Builder.div b (Instr.value x) (la 1)))
  in
  let post = build_store_of ~name:"md2" (fun _ la -> la 0) in
  match Validate.compare_funcs pre post with
  | Validate.Valid -> ()
  | v -> Alcotest.failf "expected valid, got %s" (Validate.verdict_to_string v)

let test_validate_sign_flip_mismatch () =
  let pre =
    build_store_of ~name:"sf1" (fun b la -> Instr.value (Builder.add b (la 0) (la 1)))
  in
  let post =
    build_store_of ~name:"sf2" (fun b la -> Instr.value (Builder.sub b (la 0) (la 1)))
  in
  match Validate.compare_funcs pre post with
  | Validate.Mismatch { where; _ } ->
      check "mismatch pinpoints the store" true
        (String.length where > 0 && String.sub where 0 5 = "store")
  | v -> Alcotest.failf "expected mismatch, got %s" (Validate.verdict_to_string v)

let test_validate_missing_store_mismatch () =
  let pre =
    build_store_of ~name:"ms1" (fun b la -> Instr.value (Builder.add b (la 0) (la 1)))
  in
  let post = Func.clone pre in
  (* Drop the store on the output side. *)
  Block.discard_if (Func.entry post) (fun i -> Instr.is_store i);
  match Validate.compare_funcs pre post with
  | Validate.Mismatch _ -> ()
  | v -> Alcotest.failf "expected mismatch, got %s" (Validate.verdict_to_string v)

let test_validate_loop_unknown () =
  let f = Func.create ~name:"lp" ~args:[ ("A", Ty.ptr Ty.F64); ("i", Ty.i64) ] in
  let entry = Func.add_block f "entry" in
  let body = Func.add_block f "body" in
  let b = Builder.create f ~at:entry in
  Builder.br b body;
  Builder.position b body;
  let i = Defs.Arg (Func.arg f 1) in
  let c = Builder.icmp b Defs.Lt i (Value.const_int 4) in
  Builder.cond_br b (Instr.value c) body entry;
  match Validate.compare_funcs f (Func.clone f) with
  | Validate.Unknown _ -> ()
  | v -> Alcotest.failf "expected unknown on a loop, got %s" (Validate.verdict_to_string v)

let test_validate_ifconv () =
  (* The diamond-merge path: if-conversion must validate Valid against
     the branchy original, in both paired-store and one-armed form. *)
  List.iter
    (fun src ->
      let f = compile src in
      let g = Func.clone f in
      ignore (Snslp_passes.Ifconv.run g);
      match Validate.compare_funcs f g with
      | Validate.Valid -> ()
      | v ->
          Alcotest.failf "ifconv of %s: expected valid, got %s" f.Defs.fname
            (Validate.verdict_to_string v))
    [
      {|
kernel d(double A[], double B[], long i) {
  if (i < 4) { A[i] = B[i] * 2.0; } else { A[i] = B[i] + 1.0; }
}
|};
      {|
kernel t(double A[], double B[], long i) {
  if (i < 4) { A[i] = B[i] * 2.0; }
  A[i+8] = 1.0;
}
|};
    ]

(* --- Graph invariants ------------------------------------------------------ *)

let test_invariants_on_registry_graphs () =
  List.iter
    (fun (k : Snslp_kernels.Registry.t) ->
      let f = compile k.Snslp_kernels.Registry.source in
      (* Scalar canonicalisation first, as the pipeline would. *)
      ignore (Snslp_passes.Fold.run f);
      ignore (Snslp_passes.Simplify.run f);
      ignore (Snslp_passes.Cse.run f);
      List.iter
        (fun fd -> Alcotest.failf "%s: %s" k.Snslp_kernels.Registry.name
            (Finding.to_string fd))
        (Lint.vector_invariants Config.snslp f))
    Snslp_kernels.Registry.all

(* --- Lint sweep over the evaluation assets --------------------------------- *)

let test_lint_sweep_registry () =
  List.iter
    (fun (k : Snslp_kernels.Registry.t) ->
      let f = compile k.Snslp_kernels.Registry.source in
      List.iter
        (fun fd -> Alcotest.failf "%s: %s" k.Snslp_kernels.Registry.name
            (Finding.to_string fd))
        (Finding.errors (Lint.run ~bound:Oracle.buffer_size f)))
    Snslp_kernels.Registry.all

let test_lint_sweep_fullbench () =
  List.iter
    (fun (fb : Snslp_kernels.Fullbench.t) ->
      List.iter
        (fun f ->
          List.iter
            (fun fd -> Alcotest.failf "%s: %s" fb.Snslp_kernels.Fullbench.name
                (Finding.to_string fd))
            (Finding.errors (Lint.run f)))
        (Snslp_frontend.Frontend.compile (Snslp_kernels.Fullbench.source fb)))
    Snslp_kernels.Fullbench.all

(* --- The 500-seed property ------------------------------------------------- *)

let validated_settings : (string * Pipeline.setting) list =
  [
    ("o3", None);
    ("slp", Some Config.vanilla);
    ("lslp", Some Config.lslp);
    ("snslp", Some Config.snslp);
  ]

(* Generated IR is lint-clean, and every configuration's pipeline
   validates Valid or Unknown — never Mismatch — with no graph
   invariant violations. *)
let prop_generated_ir_validates =
  QCheck.Test.make ~count:500 ~name:"generated IR lints clean and validates"
    (QCheck.make (QCheck.Gen.int_bound 1_000_000))
    (fun seed ->
      let func = Gen.generate ~seed () in
      (match Finding.errors (Lint.run ~bound:Oracle.buffer_size func) with
      | [] -> ()
      | fd :: _ ->
          QCheck.Test.fail_reportf "seed %d: %s" seed (Finding.to_string fd));
      let tolerance = Gen.tolerance_for func in
      List.iter
        (fun (name, setting) ->
          let result = Pipeline.run ~setting ~validate:true ~tolerance func in
          match result.Pipeline.validation with
          | None -> QCheck.Test.fail_reportf "seed %d %s: no validation record" seed name
          | Some v ->
              List.iter
                (fun (pass, verdict) ->
                  match verdict with
                  | Validate.Mismatch { where; detail } ->
                      QCheck.Test.fail_reportf "seed %d %s pass %s: mismatch @%s: %s"
                        seed name pass where detail
                  | Validate.Valid | Validate.Unknown _ -> ())
                v.Pipeline.pass_verdicts;
              (match v.Pipeline.end_verdict with
              | Validate.Mismatch { where; detail } ->
                  QCheck.Test.fail_reportf "seed %d %s end-to-end: mismatch @%s: %s"
                    seed name where detail
              | Validate.Valid | Validate.Unknown _ -> ());
              List.iter
                (fun msg ->
                  QCheck.Test.fail_reportf "seed %d %s: graph invariant: %s" seed name msg)
                v.Pipeline.graph_findings)
        validated_settings;
      true)

(* --- The static side-channel of the oracle --------------------------------- *)

let flip_first_float_add (f : Defs.func) =
  let flipped = ref false in
  Func.iter_instrs
    (fun i ->
      if
        (not !flipped)
        && i.Defs.op = Defs.Binop Defs.Add
        && Ty.scalar_is_float (Ty.elem i.Defs.ty)
      then begin
        i.Defs.op <- Defs.Binop Defs.Sub;
        flipped := true
      end)
    f

(* The PR-3 reduced-reproducer class must be caught by the *validator*
   — a static proof, independent of the interpreter diff. *)
let test_static_mismatch_on_injected_bug () =
  let func = Ir_parser.parse Test_fuzz.reduced_repro_inverse_pair in
  Fun.protect
    ~finally:(fun () -> Oracle.inject_bug := None)
    (fun () ->
      Oracle.inject_bug := Some flip_first_float_add;
      let findings = Oracle.run_case func in
      check "validator flags the injected bug statically" true
        (List.exists
           (fun (fd : Oracle.finding) ->
             match fd.Oracle.kind with Oracle.Static_mismatch _ -> true | _ -> false)
           findings);
      (* And the flag really gates the static side-channel. *)
      let without = Oracle.run_case ~validate:false func in
      check "no static findings with validation off" false
        (List.exists
           (fun (fd : Oracle.finding) ->
             match fd.Oracle.kind with Oracle.Static_mismatch _ -> true | _ -> false)
           without))

(* Clean functions produce no static findings through the oracle. *)
let test_oracle_validates_clean () =
  let func = Ir_parser.parse Test_fuzz.reduced_repro_inverse_pair in
  List.iter
    (fun fd -> Alcotest.failf "unexpected finding: %s" (Oracle.finding_to_string fd))
    (Oracle.run_case func)

(* --- Loop-aware validation -------------------------------------------------- *)

let expect_valid what pre post =
  match Validate.compare_funcs pre post with
  | Validate.Valid -> ()
  | v -> Alcotest.failf "%s: expected valid, got %s" what (Validate.verdict_to_string v)

let expect_unknown what reason pre post =
  match Validate.compare_funcs pre post with
  | Validate.Unknown r when contains r reason -> ()
  | Validate.Unknown r ->
      Alcotest.failf "%s: unknown, but reason %S does not mention %S" what r reason
  | v -> Alcotest.failf "%s: expected unknown, got %s" what (Validate.verdict_to_string v)

(* A constant-trip loop executes concretely, so loop-shaped and
   straight-line renderings of the same computation — and opposite
   iteration orders — reach the same symbolic memory. *)
let test_validate_const_trip_loop_forms () =
  let rolled =
    compile
      {|
kernel r(double a[], double c[], long i) {
  for (long k = 0; k < 4; k = k + 1) { c[k] = a[k] + 1.0; }
}
|}
  in
  let unrolled =
    compile
      {|
kernel u(double a[], double c[], long i) {
  c[0] = a[0] + 1.0;
  c[1] = a[1] + 1.0;
  c[2] = a[2] + 1.0;
  c[3] = a[3] + 1.0;
}
|}
  in
  let down =
    compile
      {|
kernel d(double a[], double c[], long i) {
  for (long k = 3; k > -1; k = k - 1) { c[k] = a[k] + 1.0; }
}
|}
  in
  expect_valid "loop vs straight line" rolled unrolled;
  expect_valid "up-count vs down-count" rolled down

(* A partial unroll of a constant-trip loop leaves a rotated main
   loop (folded (iv+s)+s increments) plus an epilogue — both execute
   concretely, so every pass verdict is Valid where the digest
   fallback used to answer Unknown. *)
let test_validate_partial_unroll_valid () =
  let src =
    {|
kernel s8(double a[], double b[], double c[], long i) {
  for (long k = 0; k < 8; k = k + 1) { c[i + k] = a[i + k] * 2.0 + b[i + k]; }
}
|}
  in
  List.iter
    (fun unroll ->
      let setting = Some { Config.snslp with Config.unroll } in
      let r = Pipeline.run ~setting ~validate:true (compile src) in
      match r.Pipeline.validation with
      | None -> Alcotest.fail "no validation record"
      | Some v ->
          List.iter
            (fun (pass, verdict) ->
              match verdict with
              | Validate.Valid -> ()
              | verdict ->
                  Alcotest.failf "pass %s: %s" pass (Validate.verdict_to_string verdict))
            v.Pipeline.pass_verdicts;
          (match v.Pipeline.end_verdict with
          | Validate.Valid -> ()
          | verdict ->
              Alcotest.failf "end verdict: %s" (Validate.verdict_to_string verdict)))
    [ Config.Unroll_by 2; Config.Unroll_by 4; Config.Unroll_auto ]

(* The jammed body directly: unroll then jam, compare against the
   untouched original. *)
let test_validate_jammed_body () =
  let f =
    compile
      {|
kernel j(double a[], double c[], long i) {
  for (long k = 0; k < 6; k = k + 1) { c[k] = a[k] * 3.0; }
}
|}
  in
  let g = Func.clone f in
  ignore (Snslp_passes.Unroll.run ~policy:(Snslp_passes.Unroll.Factor 2) g);
  let merged = Snslp_passes.Unroll_and_jam.run g in
  check "jam merged blocks" true (merged > 0);
  expect_valid "jammed partial unroll" f g

let loop_reassoc_a =
  {|
kernel f(double A[], double B[], double C[], double D[], long n) {
  for (long k = 0; k < n; k = k + 1) { A[k] = B[k] - C[k] + D[k]; }
}
|}

let loop_reassoc_b =
  {|
kernel g(double A[], double B[], double C[], double D[], long n) {
  for (long k = 0; k < n; k = k + 1) { A[k] = D[k] + B[k] - C[k]; }
}
|}

(* Symbolic trip counts switch the validator to inductive mode: one
   abstract iteration is summarised, and equal summaries prove the
   loops equivalent by induction.  Divergent summaries are
   inconclusive — Unknown, never Mismatch. *)
let test_validate_symbolic_trip_inductive () =
  expect_valid "reassociated symbolic-trip loops" (compile loop_reassoc_a)
    (compile loop_reassoc_b);
  let different =
    compile
      {|
kernel h(double A[], double B[], double C[], double D[], long n) {
  for (long k = 0; k < n; k = k + 1) { A[k] = B[k] + C[k] + D[k]; }
}
|}
  in
  expect_unknown "different symbolic loops" "loop summaries differ"
    (compile loop_reassoc_a) different;
  (* The semantic digest mirrors the verdicts: equal for the
     equivalent pair, distinct for the different one, and defined
     (Some) for all three — symbolic loops are inside the fragment
     now. *)
  let digest src = Validate.snapshot_digest (Validate.capture (compile src)) in
  (match (digest loop_reassoc_a, digest loop_reassoc_b) with
  | Some d1, Some d2 -> check "equivalent loops share a digest" true (String.equal d1 d2)
  | _ -> Alcotest.fail "symbolic-trip loop fell out of the fragment");
  match
    ( digest loop_reassoc_a,
      Validate.snapshot_digest (Validate.capture different) )
  with
  | Some d1, Some d3 -> check "different loops do not share" false (String.equal d1 d3)
  | _ -> Alcotest.fail "symbolic-trip loop fell out of the fragment"

(* Accessing a buffer a symbolic-trip loop wrote conflates
   iteration-entry atoms with final content, so the validator gives
   up rather than risk a false Valid. *)
let test_validate_symbolic_loop_taint () =
  let f =
    compile
      {|
kernel t(double a[], double b[], long n) {
  for (long k = 0; k < n; k = k + 1) { b[k] = a[k]; }
  b[0] = 1.0;
}
|}
  in
  expect_unknown "post-loop store to a loop-written buffer" "symbolic-trip loop" f
    (Func.clone f)

(* The Unknown reasons name the unsupported feature. *)
let test_validate_unknown_reasons () =
  (* Zero induction step: a legal KernelC loop the recognizer refuses. *)
  let spin =
    compile
      {|
kernel spin(double a[], double c[], long i) {
  for (long k = 0; k < 8; k = k + 0) { c[k] = a[k] + 1.0; }
}
|}
  in
  expect_unknown "zero step" "zero induction step" spin (Func.clone spin);
  (* Non-affine induction step: iv multiplied on the back edge. *)
  let nonaff =
    let f = Func.create ~name:"na" ~args:[ ("A", Ty.ptr Ty.F64); ("n", Ty.i64) ] in
    let entry = Func.add_block f "entry" in
    let header = Func.add_block f "header" in
    let body = Func.add_block f "body" in
    let exit = Func.add_block f "exit" in
    let b = Builder.create f ~at:entry in
    Builder.br b header;
    Builder.position b header;
    let iv =
      Builder.phi b ~preds:[| entry; body |]
        [| Value.const_int 1; Defs.Undef Ty.i64 |]
    in
    let c = Builder.icmp b Defs.Lt (Instr.value iv) (Defs.Arg (Func.arg f 1)) in
    Builder.cond_br b (Instr.value c) body exit;
    Builder.position b body;
    let g = Builder.gep b (Defs.Arg (Func.arg f 0)) (Instr.value iv) in
    ignore (Builder.store b (Value.const_float 1.0) (Instr.value g));
    let next = Builder.mul b (Instr.value iv) (Value.const_int 2) in
    Instr.set_operand iv 1 (Instr.value next);
    Builder.br b header;
    Builder.position b exit;
    Builder.ret b;
    Verifier.verify_exn f;
    f
  in
  expect_unknown "non-affine step" "non-affine induction step" nonaff (Func.clone nonaff);
  (* Multi-exit: a second way out of the loop from inside the body. *)
  let multi_exit =
    let f = Func.create ~name:"mx" ~args:[ ("A", Ty.ptr Ty.F64); ("n", Ty.i64) ] in
    let entry = Func.add_block f "entry" in
    let header = Func.add_block f "header" in
    let body = Func.add_block f "body" in
    let latch = Func.add_block f "latch" in
    let exit = Func.add_block f "exit" in
    let exit2 = Func.add_block f "exit2" in
    let b = Builder.create f ~at:entry in
    Builder.br b header;
    Builder.position b header;
    let iv =
      Builder.phi b ~preds:[| entry; latch |]
        [| Value.const_int 0; Defs.Undef Ty.i64 |]
    in
    let c = Builder.icmp b Defs.Lt (Instr.value iv) (Defs.Arg (Func.arg f 1)) in
    Builder.cond_br b (Instr.value c) body exit;
    Builder.position b body;
    let c2 = Builder.icmp b Defs.Lt (Instr.value iv) (Value.const_int 4) in
    Builder.cond_br b (Instr.value c2) latch exit2;
    Builder.position b latch;
    let next = Builder.add b (Instr.value iv) (Value.const_int 1) in
    Instr.set_operand iv 1 (Instr.value next);
    Builder.br b header;
    Builder.position b exit;
    Builder.ret b;
    Builder.position b exit2;
    Builder.ret b;
    Verifier.verify_exn f;
    f
  in
  expect_unknown "multi-exit" "multi-exit" multi_exit (Func.clone multi_exit)

(* --- The loop checkers ------------------------------------------------------ *)

let test_loop_bounds_off_by_one () =
  let f =
    compile
      {|
kernel ob(double a[], double c[], long i) {
  for (long k = 0; k < 8; k = k + 1) { c[k + 1] = a[k]; }
}
|}
  in
  (match Checks.loop_bounds ~bound:8 f with
  | [ fd ] ->
      check "is an error" true (Finding.is_error fd);
      check "named checker" true (fd.Finding.check = "loop-out-of-bounds");
      check "where names the owning loop" true (contains fd.Finding.where "(loop ");
      check "message gives the range" true (contains fd.Finding.message "[8, 9)")
  | l -> Alcotest.failf "expected 1 loop-bounds finding, got %d" (List.length l));
  check_int "large enough buffer is silent" 0 (List.length (Checks.loop_bounds ~bound:9 f));
  (* A negative reach needs no buffer size at all. *)
  let neg =
    compile
      {|
kernel nb(double a[], double c[], long i) {
  for (long k = 0; k < 8; k = k + 1) { c[k - 1] = a[k]; }
}
|}
  in
  check_int "negative reach flagged without bound" 1 (List.length (Checks.loop_bounds neg))

let test_loop_dead_store_checker () =
  let f =
    compile
      {|
kernel lds(double a[], double b[], long i) {
  for (long k = 0; k < 8; k = k + 1) { b[0] = a[k]; }
}
|}
  in
  (match Checks.loop_dead_stores f with
  | [ fd ] ->
      check "is a warning" false (Finding.is_error fd);
      check "counts the wasted trips" true (contains fd.Finding.message "7 of 8 trips")
  | l -> Alcotest.failf "expected 1 loop-dead-store finding, got %d" (List.length l));
  (* A load that may observe the cell keeps the store alive. *)
  let observed =
    compile
      {|
kernel lds2(double a[], double b[], double c[], long i) {
  for (long k = 0; k < 8; k = k + 1) { b[0] = a[k]; c[k] = b[0]; }
}
|}
  in
  check_int "observed invariant store is silent" 0
    (List.length (Checks.loop_dead_stores observed))

let test_loop_termination_checker () =
  (* k != 7 stepping by 2 from 0 never settles: provable, Error. *)
  let inf =
    compile
      {|
kernel inf(double a[], long n) {
  for (long k = 0; k != 7; k = k + 2) { a[0] = a[0] + 1.0; }
}
|}
  in
  (match Checks.loop_termination inf with
  | [ fd ] ->
      check "provable non-termination is an error" true (Finding.is_error fd);
      check "message explains" true (contains fd.Finding.message "never settles")
  | l -> Alcotest.failf "expected 1 termination finding, got %d" (List.length l));
  (* Symbolic bound + non-monotone step: termination depends on the
     runtime value — a warning. *)
  let nm =
    compile
      {|
kernel nm(double a[], long n) {
  for (long k = 0; k != n; k = k + 2) { a[k] = 1.0; }
}
|}
  in
  (match Checks.loop_termination nm with
  | [ fd ] ->
      check "non-monotone is a warning" false (Finding.is_error fd);
      check "message names monotonicity" true (contains fd.Finding.message "monotone")
  | l -> Alcotest.failf "expected 1 termination finding, got %d" (List.length l));
  (* A plain counted loop is silent. *)
  let ok = compile "kernel ok(double a[], long n) { for (long k = 0; k < n; k = k + 1) { a[k] = 1.0; } }" in
  check_int "monotone loop is silent" 0 (List.length (Checks.loop_termination ok))

(* --- Cross-iteration dependences (Loopdep) ---------------------------------- *)

let the_info f =
  match (Loopdep.analyze f).Loopdep.infos with
  | [ i ] -> i
  | l -> Alcotest.failf "expected one loop, got %d" (List.length l)

let test_loopdep_distances () =
  (* Flow: a[k+1] stored at iteration p is read as a[k] at p+1. *)
  let flow =
    compile
      {|
kernel fl(double a[], long i) {
  for (long k = 0; k < 8; k = k + 1) { a[k + 1] = a[k] * 2.0; }
}
|}
  in
  (match (the_info flow).Loopdep.deps with
  | [ d ] ->
      check "flow kind" true (d.Loopdep.kind = Loopdep.Flow);
      check_int "distance 1" 1 d.Loopdep.distance
  | l -> Alcotest.failf "expected 1 dep, got %d" (List.length l));
  (* Anti: a[k+2] read at iteration p is overwritten as a[k] at p+2. *)
  let anti =
    compile
      {|
kernel an(double a[], long i) {
  for (long k = 0; k < 8; k = k + 1) { a[k] = a[k + 2] * 1.5; }
}
|}
  in
  (match (the_info anti).Loopdep.deps with
  | [ d ] ->
      check "anti kind" true (d.Loopdep.kind = Loopdep.Anti);
      check_int "distance 2" 2 d.Loopdep.distance
  | l -> Alcotest.failf "expected 1 dep, got %d" (List.length l));
  (* Output: the same invariant cell is stored every iteration —
     carried at every distance, reported with the minimal one. *)
  let output =
    compile
      {|
kernel ou(double a[], double b[], long i) {
  for (long k = 0; k < 8; k = k + 1) { b[0] = a[k]; }
}
|}
  in
  check "output dep at distance 1" true
    (List.exists
       (fun (d : Loopdep.dep) -> d.Loopdep.kind = Loopdep.Output && d.Loopdep.distance = 1)
       (the_info output).Loopdep.deps)

let test_loopdep_parallel () =
  let f =
    compile
      {|
kernel pa(double a[], double b[], double c[], long i) {
  for (long k = 0; k < 8; k = k + 1) { c[k] = a[k] + b[k]; }
}
|}
  in
  let info = the_info f in
  check "analyzed" true info.Loopdep.analyzed;
  check "no carried dependence" true (info.Loopdep.deps = []);
  check "parallel" true info.Loopdep.parallel;
  (* The finding view: dependences surface as Info findings naming
     the owning loop. *)
  check_int "no dependence findings" 0 (List.length (Checks.loop_dependences f));
  let flow =
    compile
      {|
kernel fl2(double a[], long i) {
  for (long k = 0; k < 8; k = k + 1) { a[k + 1] = a[k] * 2.0; }
}
|}
  in
  match Checks.loop_dependences flow with
  | [ fd ] ->
      check "info severity" false (Finding.is_error fd);
      check "where names the loop" true (contains fd.Finding.where "(loop ");
      check "message carries kind and distance" true
        (contains fd.Finding.message "flow dependence, distance 1")
  | l -> Alcotest.failf "expected 1 dependence finding, got %d" (List.length l)

(* --- The 500-seed loopy property --------------------------------------------- *)

(* Aggregated by the property below, asserted by
   [test_loopy_valid_rate] which runs after it. *)
let loopy_counted_total = ref 0
let loopy_counted_valid = ref 0

let all_loops_const_counted (f : Defs.func) =
  match f.Defs.blocks with
  | [] | [ _ ] -> false
  | _ ->
      let forest = Loops.analyze f in
      forest.Loops.loops <> []
      && List.for_all
           (fun l ->
             match Loops.as_counted f l with
             | Some c -> Loops.trip_count c <> None
             | None -> false)
           forest.Loops.loops

(* Loopy generated IR through every validated configuration: the
   validator never reports Mismatch, and on functions whose loops are
   all counted with constant trips the end-to-end verdict is Valid —
   the rate is checked against the 0.9 floor below. *)
let prop_loopy_ir_validates =
  QCheck.Test.make ~count:500 ~name:"loopy IR validates without mismatch"
    (QCheck.make (QCheck.Gen.int_bound 1_000_000))
    (fun seed ->
      let func = Gen.generate ~profile:Gen.loopy_profile ~seed () in
      let tolerance = Gen.tolerance_for func in
      let counted = all_loops_const_counted func in
      if counted then incr loopy_counted_total;
      let all_valid = ref true in
      List.iter
        (fun (name, setting) ->
          let result = Pipeline.run ~setting ~validate:true ~tolerance func in
          match result.Pipeline.validation with
          | None -> QCheck.Test.fail_reportf "seed %d %s: no validation record" seed name
          | Some v ->
              List.iter
                (fun (pass, verdict) ->
                  match verdict with
                  | Validate.Mismatch { where; detail } ->
                      QCheck.Test.fail_reportf "seed %d %s pass %s: mismatch @%s: %s"
                        seed name pass where detail
                  | Validate.Valid | Validate.Unknown _ -> ())
                v.Pipeline.pass_verdicts;
              (match v.Pipeline.end_verdict with
              | Validate.Mismatch { where; detail } ->
                  QCheck.Test.fail_reportf "seed %d %s end-to-end: mismatch @%s: %s"
                    seed name where detail
              | Validate.Valid -> ()
              | Validate.Unknown _ -> all_valid := false))
        validated_settings;
      if counted && !all_valid then incr loopy_counted_valid;
      true)

let test_loopy_valid_rate () =
  if !loopy_counted_total = 0 then
    Alcotest.fail "the loopy validation property produced no counted-loop cases"
  else begin
    let rate = float_of_int !loopy_counted_valid /. float_of_int !loopy_counted_total in
    if rate < 0.9 then
      Alcotest.failf "counted-loop valid rate %.3f below the 0.9 floor (%d/%d)" rate
        !loopy_counted_valid !loopy_counted_total
  end

let suite =
  [
    ( "lint",
      [
        Alcotest.test_case "liveness: straight line" `Quick test_liveness_straightline;
        Alcotest.test_case "liveness: diamond" `Quick test_liveness_diamond;
        Alcotest.test_case "reaching stores" `Quick test_reaching_stores;
        Alcotest.test_case "available exprs killed by store" `Quick
          test_avail_load_killed_by_store;
        Alcotest.test_case "check: use of undef" `Quick test_check_undef;
        Alcotest.test_case "check: dead store" `Quick test_check_dead_store;
        Alcotest.test_case "check: out of bounds" `Quick test_check_bounds;
        Alcotest.test_case "check: memory kinds" `Quick test_check_memory_kind;
        Alcotest.test_case "verifier errors carry the instruction" `Quick
          test_verifier_where_pretty;
        Alcotest.test_case "validate: reassociation" `Quick test_validate_reassociation;
        Alcotest.test_case "validate: additive inverse pair" `Quick
          test_validate_inverse_cancellation;
        Alcotest.test_case "validate: multiplicative inverse pair" `Quick
          test_validate_mul_div_inverse;
        Alcotest.test_case "validate: sign flip is a mismatch" `Quick
          test_validate_sign_flip_mismatch;
        Alcotest.test_case "validate: dropped store is a mismatch" `Quick
          test_validate_missing_store_mismatch;
        Alcotest.test_case "validate: loops are unknown" `Quick test_validate_loop_unknown;
        Alcotest.test_case "validate: if-conversion" `Quick test_validate_ifconv;
        Alcotest.test_case "validate: const-trip loop forms" `Quick
          test_validate_const_trip_loop_forms;
        Alcotest.test_case "validate: partial unroll valid" `Quick
          test_validate_partial_unroll_valid;
        Alcotest.test_case "validate: jammed body" `Quick test_validate_jammed_body;
        Alcotest.test_case "validate: symbolic trip inductive" `Quick
          test_validate_symbolic_trip_inductive;
        Alcotest.test_case "validate: symbolic loop taint" `Quick
          test_validate_symbolic_loop_taint;
        Alcotest.test_case "validate: unknown reasons are specific" `Quick
          test_validate_unknown_reasons;
        Alcotest.test_case "check: loop bounds off-by-one" `Quick
          test_loop_bounds_off_by_one;
        Alcotest.test_case "check: loop dead store" `Quick test_loop_dead_store_checker;
        Alcotest.test_case "check: loop termination" `Quick test_loop_termination_checker;
        Alcotest.test_case "loopdep: distances" `Quick test_loopdep_distances;
        Alcotest.test_case "loopdep: parallel loop" `Quick test_loopdep_parallel;
        Alcotest.test_case "graph invariants hold on registry kernels" `Quick
          test_invariants_on_registry_graphs;
        Alcotest.test_case "lint sweep: registry" `Quick test_lint_sweep_registry;
        Alcotest.test_case "lint sweep: fullbench" `Slow test_lint_sweep_fullbench;
        QCheck_alcotest.to_alcotest prop_generated_ir_validates;
        QCheck_alcotest.to_alcotest prop_loopy_ir_validates;
        Alcotest.test_case "loopy counted valid rate >= 0.9" `Quick test_loopy_valid_rate;
        Alcotest.test_case "oracle: static mismatch on injected bug" `Quick
          test_static_mismatch_on_injected_bug;
        Alcotest.test_case "oracle: clean case stays clean" `Quick
          test_oracle_validates_clean;
      ] );
  ]

(* Tests for lib/lint: the dataflow engine instances, the checker
   suite, the translation validator, the vectorizer graph invariants,
   and the lint/validation sweep over every evaluation asset. *)

open Snslp_ir
open Snslp_lint
module Oracle = Snslp_fuzzer.Oracle
module Gen = Snslp_fuzzer.Gen
module Pipeline = Snslp_passes.Pipeline
module Config = Snslp_vectorizer.Config

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let compile = Snslp_frontend.Frontend.compile_one

(* --- Dataflow: liveness ---------------------------------------------------- *)

(* entry:  %g = gep A, 0
           %x = load %g
           %y = fadd %x, %x      (stored: live)
           %z = fadd %x, %x      (unused: dead)
           store %y, %g          *)
let test_liveness_straightline () =
  let f = Func.create ~name:"lv" ~args:[ ("A", Ty.ptr Ty.F64) ] in
  let entry = Func.add_block f "entry" in
  let b = Builder.create f ~at:entry in
  let a = Defs.Arg (Func.arg f 0) in
  let g = Builder.gep b a (Value.const_int 0) in
  let x = Builder.load b (Instr.value g) in
  let y = Builder.add b (Instr.value x) (Instr.value x) in
  let z = Builder.add b (Instr.value x) (Instr.value x) in
  ignore (Builder.store b (Instr.value y) (Instr.value g));
  Builder.ret b;
  let sol = Liveness.compute f in
  (* Nothing is live out of the function... *)
  check_int "live-out empty" 0 (Liveness.S.cardinal (Liveness.live_out sol entry));
  (* ...and on entry only the argument is. *)
  check "arg live on entry" true
    (Liveness.S.mem (Liveness.arg_key (Func.arg f 0)) (Liveness.live_in sol entry));
  check "x not live on entry" false
    (Liveness.S.mem (Liveness.instr_key x) (Liveness.live_in sol entry));
  (* Below the definition of %y, %y and %g are live (the store reads
     both), %z is not. *)
  let states = Liveness.instr_states sol entry in
  let _, live_below_y, _ =
    List.find (fun (i, _, _) -> i == y) states
  in
  check "y live below its def" true (Liveness.S.mem (Liveness.instr_key y) live_below_y);
  check "g live below y" true (Liveness.S.mem (Liveness.instr_key g) live_below_y);
  check "z dead below y" false (Liveness.S.mem (Liveness.instr_key z) live_below_y);
  (* The dead-instruction view agrees with DCE's verdict. *)
  (match Liveness.dead sol f with
  | [ d ] -> check "only z is dead" true (d == z)
  | l -> Alcotest.failf "expected exactly %%z dead, got %d instrs" (List.length l))

(* Liveness across a diamond: a value defined in the entry block and
   used in only one arm must be live into that arm and not the other. *)
let test_liveness_diamond () =
  let f =
    compile
      {|
kernel d(double A[], double B[], long i) {
  if (i < 4) { A[i] = B[i] * 2.0; } else { A[0] = 1.0; }
}
|}
  in
  let sol = Liveness.compute f in
  let block name = List.find (fun (b : Defs.block) -> b.Defs.bname = name) f.Defs.blocks in
  let uses_b blk =
    Liveness.S.exists
      (fun k -> k = Liveness.arg_key (Func.arg f 1))
      (Liveness.live_in sol blk)
  in
  let arms =
    List.filter
      (fun (b : Defs.block) -> b != Func.entry f && Block.successors b <> [])
      f.Defs.blocks
  in
  (match arms with
  | [ _; _ ] -> ()
  | _ -> Alcotest.fail "expected a two-arm diamond");
  check "B live into exactly one arm" true
    (List.length (List.filter uses_b arms) = 1);
  ignore block

(* --- Dataflow: reaching stores --------------------------------------------- *)

let test_reaching_stores () =
  let f = Func.create ~name:"rs" ~args:[ ("A", Ty.ptr Ty.F64) ] in
  let entry = Func.add_block f "entry" in
  let b = Builder.create f ~at:entry in
  let a = Defs.Arg (Func.arg f 0) in
  let g0 = Builder.gep b a (Value.const_int 0) in
  let g1 = Builder.gep b a (Value.const_int 1) in
  let x = Builder.load b (Instr.value g0) in
  let s1 = Builder.store b (Instr.value x) (Instr.value g0) in
  let s2 = Builder.store b (Instr.value x) (Instr.value g0) in
  let s3 = Builder.store b (Instr.value x) (Instr.value g1) in
  Builder.ret b;
  let sol = Reaching.compute f in
  let out = Reaching.reaching_out sol entry in
  check "overwritten store killed" false (Reaching.S.mem s1.Defs.iid out);
  check "covering store reaches" true (Reaching.S.mem s2.Defs.iid out);
  check "disjoint store reaches" true (Reaching.S.mem s3.Defs.iid out);
  check "iids resolve back to stores" true
    (match Reaching.store_of sol s2.Defs.iid with Some i -> i == s2 | None -> false)

(* --- Dataflow: available expressions --------------------------------------- *)

let test_avail_load_killed_by_store () =
  let f = Func.create ~name:"av" ~args:[ ("A", Ty.ptr Ty.F64) ] in
  let entry = Func.add_block f "entry" in
  let b = Builder.create f ~at:entry in
  let a = Defs.Arg (Func.arg f 0) in
  let g0 = Builder.gep b a (Value.const_int 0) in
  let g0' = Builder.gep b a (Value.const_int 0) in
  let x = Builder.load b (Instr.value g0) in
  ignore (Builder.store b (Instr.value x) (Instr.value g0));
  let x' = Builder.load b (Instr.value g0) in
  ignore (Builder.store b (Instr.value x') (Instr.value g0'));
  Builder.ret b;
  let sol = Avail.compute f in
  let redundant = Avail.redundant sol f in
  (* The repeated gep is available again; the reload is not (the store
     killed every load expression). *)
  check "gep is redundant" true (List.memq g0' redundant);
  check "reload after store is not redundant" false (List.memq x' redundant)

(* --- Checkers -------------------------------------------------------------- *)

let test_check_undef () =
  let f = Func.create ~name:"ud" ~args:[ ("x", Ty.f64) ] in
  let entry = Func.add_block f "entry" in
  let b = Builder.create f ~at:entry in
  let x = Defs.Arg (Func.arg f 0) in
  ignore (Builder.add b x (Defs.Undef Ty.f64));
  Builder.ret b;
  match Checks.undef_uses f with
  | [ fd ] ->
      check "severity" true (Finding.is_error fd);
      check "where is the pretty-printed instr" true
        (String.length fd.Finding.where > 0
        && String.sub fd.Finding.where 0 1 = "%")
  | l -> Alcotest.failf "expected 1 undef finding, got %d" (List.length l)

let test_check_dead_store () =
  let f = Func.create ~name:"ds" ~args:[ ("A", Ty.ptr Ty.F64) ] in
  let entry = Func.add_block f "entry" in
  let b = Builder.create f ~at:entry in
  let a = Defs.Arg (Func.arg f 0) in
  let g0 = Builder.gep b a (Value.const_int 0) in
  let x = Builder.load b (Instr.value g0) in
  ignore (Builder.store b (Instr.value x) (Instr.value g0));
  ignore (Builder.store b (Instr.value x) (Instr.value g0));
  Builder.ret b;
  check_int "one dead store" 1 (List.length (Checks.dead_stores f));
  (* An intervening load of the same cell keeps the first store alive. *)
  let f2 = Func.create ~name:"ds2" ~args:[ ("A", Ty.ptr Ty.F64) ] in
  let entry2 = Func.add_block f2 "entry" in
  let b2 = Builder.create f2 ~at:entry2 in
  let a2 = Defs.Arg (Func.arg f2 0) in
  let h0 = Builder.gep b2 a2 (Value.const_int 0) in
  let y = Builder.load b2 (Instr.value h0) in
  ignore (Builder.store b2 (Instr.value y) (Instr.value h0));
  let y' = Builder.load b2 (Instr.value h0) in
  ignore (Builder.store b2 (Instr.value y') (Instr.value h0));
  Builder.ret b2;
  check_int "intervening load keeps it live" 0 (List.length (Checks.dead_stores f2))

let test_check_bounds () =
  let f = Func.create ~name:"ob" ~args:[ ("A", Ty.ptr Ty.F64) ] in
  let entry = Func.add_block f "entry" in
  let b = Builder.create f ~at:entry in
  let a = Defs.Arg (Func.arg f 0) in
  let gneg = Builder.gep b a (Value.const_int (-1)) in
  let x = Builder.load b (Instr.value gneg) in
  let gpast = Builder.gep b a (Value.const_int 6) in
  ignore (Builder.store b (Instr.value x) (Instr.value gpast));
  Builder.ret b;
  check_int "negative index alone" 1 (List.length (Checks.bounds f));
  check_int "negative index + past the end" 2 (List.length (Checks.bounds ~bound:4 f));
  check_int "large enough buffer" 1 (List.length (Checks.bounds ~bound:16 f))

let test_check_memory_kind () =
  let f = Func.create ~name:"mk" ~args:[ ("A", Ty.ptr Ty.F64) ] in
  let entry = Func.add_block f "entry" in
  let b = Builder.create f ~at:entry in
  let a = Defs.Arg (Func.arg f 0) in
  let g0 = Builder.gep b a (Value.const_int 0) in
  let x = Builder.load b (Instr.value g0) in
  ignore (Builder.store b (Instr.value x) (Instr.value g0));
  Builder.ret b;
  check_int "well-typed access is silent" 0 (List.length (Checks.memory_kinds f));
  (* Mutate the load into an integer access to the float buffer — the
     shape Memory.read rejects at runtime.  The store forwarding the
     retyped value is flagged too. *)
  x.Defs.ty <- Ty.i64;
  (match Checks.memory_kinds f with
  | [ fd; fd' ] ->
      check "cross-kind load is an error" true (Finding.is_error fd);
      check "cross-kind store is an error" true (Finding.is_error fd')
  | l -> Alcotest.failf "expected 2 memory-kind findings, got %d" (List.length l));
  (* A same-kind width change is only a warning. *)
  x.Defs.ty <- Ty.f32;
  match Checks.memory_kinds f with
  | fd :: rest ->
      check "width mismatch is a warning" false (Finding.is_error fd);
      check "no error among width findings" true (Finding.errors rest = [])
  | [] -> Alcotest.fail "expected width-mismatch findings"

(* --- Verifier messages carry the pretty-printed instruction ---------------- *)

let test_verifier_where_pretty () =
  let f = Func.create ~name:"vw" ~args:[ ("P", Ty.ptr Ty.I64) ] in
  let entry = Func.add_block f "entry" in
  let b = Builder.create f ~at:entry in
  let p = Defs.Arg (Func.arg f 0) in
  let x = Builder.load b p in
  Builder.ret b;
  (* Retype the load into a float read through the i64 pointer: the
     builder refuses to construct this, so mutate after the fact. *)
  x.Defs.ty <- Ty.f64;
  match Verifier.verify f with
  | [] -> Alcotest.fail "expected a verifier error"
  | e :: _ ->
      check "where is the whole instruction" true
        (String.equal e.Verifier.where (Instr.to_string x))

(* --- The translation validator --------------------------------------------- *)

let build_store_of ~name emit =
  let f =
    Func.create ~name ~args:[ ("A", Ty.ptr Ty.F64); ("B", Ty.ptr Ty.F64) ]
  in
  let entry = Func.add_block f "entry" in
  let b = Builder.create f ~at:entry in
  let a = Defs.Arg (Func.arg f 0) in
  let load_a k =
    Instr.value (Builder.load b (Instr.value (Builder.gep b a (Value.const_int k))))
  in
  let out = Builder.gep b (Defs.Arg (Func.arg f 1)) (Value.const_int 0) in
  let v = emit b load_a in
  ignore (Builder.store b v (Instr.value out));
  Builder.ret b;
  f

let test_validate_reassociation () =
  (* (a+b)+c vs (c+a)+b: same signed multiset, Valid. *)
  let pre =
    build_store_of ~name:"re1" (fun b la ->
        let x = Builder.add b (la 0) (la 1) in
        Instr.value (Builder.add b (Instr.value x) (la 2)))
  in
  let post =
    build_store_of ~name:"re2" (fun b la ->
        let x = Builder.add b (la 2) (la 0) in
        Instr.value (Builder.add b (Instr.value x) (la 1)))
  in
  match Validate.compare_funcs pre post with
  | Validate.Valid -> ()
  | v -> Alcotest.failf "expected valid, got %s" (Validate.verdict_to_string v)

let test_validate_inverse_cancellation () =
  (* a + b - b normalises to a: the inverse-element pair cancels. *)
  let pre =
    build_store_of ~name:"iv1" (fun b la ->
        let x = Builder.add b (la 0) (la 1) in
        Instr.value (Builder.sub b (Instr.value x) (la 1)))
  in
  let post = build_store_of ~name:"iv2" (fun _ la -> la 0) in
  match Validate.compare_funcs pre post with
  | Validate.Valid -> ()
  | v -> Alcotest.failf "expected valid, got %s" (Validate.verdict_to_string v)

let test_validate_mul_div_inverse () =
  (* (a*b)/b normalises to a: the multiplicative inverse pair. *)
  let pre =
    build_store_of ~name:"md1" (fun b la ->
        let x = Builder.mul b (la 0) (la 1) in
        Instr.value (Builder.div b (Instr.value x) (la 1)))
  in
  let post = build_store_of ~name:"md2" (fun _ la -> la 0) in
  match Validate.compare_funcs pre post with
  | Validate.Valid -> ()
  | v -> Alcotest.failf "expected valid, got %s" (Validate.verdict_to_string v)

let test_validate_sign_flip_mismatch () =
  let pre =
    build_store_of ~name:"sf1" (fun b la -> Instr.value (Builder.add b (la 0) (la 1)))
  in
  let post =
    build_store_of ~name:"sf2" (fun b la -> Instr.value (Builder.sub b (la 0) (la 1)))
  in
  match Validate.compare_funcs pre post with
  | Validate.Mismatch { where; _ } ->
      check "mismatch pinpoints the store" true
        (String.length where > 0 && String.sub where 0 5 = "store")
  | v -> Alcotest.failf "expected mismatch, got %s" (Validate.verdict_to_string v)

let test_validate_missing_store_mismatch () =
  let pre =
    build_store_of ~name:"ms1" (fun b la -> Instr.value (Builder.add b (la 0) (la 1)))
  in
  let post = Func.clone pre in
  (* Drop the store on the output side. *)
  Block.discard_if (Func.entry post) (fun i -> Instr.is_store i);
  match Validate.compare_funcs pre post with
  | Validate.Mismatch _ -> ()
  | v -> Alcotest.failf "expected mismatch, got %s" (Validate.verdict_to_string v)

let test_validate_loop_unknown () =
  let f = Func.create ~name:"lp" ~args:[ ("A", Ty.ptr Ty.F64); ("i", Ty.i64) ] in
  let entry = Func.add_block f "entry" in
  let body = Func.add_block f "body" in
  let b = Builder.create f ~at:entry in
  Builder.br b body;
  Builder.position b body;
  let i = Defs.Arg (Func.arg f 1) in
  let c = Builder.icmp b Defs.Lt i (Value.const_int 4) in
  Builder.cond_br b (Instr.value c) body entry;
  match Validate.compare_funcs f (Func.clone f) with
  | Validate.Unknown _ -> ()
  | v -> Alcotest.failf "expected unknown on a loop, got %s" (Validate.verdict_to_string v)

let test_validate_ifconv () =
  (* The diamond-merge path: if-conversion must validate Valid against
     the branchy original, in both paired-store and one-armed form. *)
  List.iter
    (fun src ->
      let f = compile src in
      let g = Func.clone f in
      ignore (Snslp_passes.Ifconv.run g);
      match Validate.compare_funcs f g with
      | Validate.Valid -> ()
      | v ->
          Alcotest.failf "ifconv of %s: expected valid, got %s" f.Defs.fname
            (Validate.verdict_to_string v))
    [
      {|
kernel d(double A[], double B[], long i) {
  if (i < 4) { A[i] = B[i] * 2.0; } else { A[i] = B[i] + 1.0; }
}
|};
      {|
kernel t(double A[], double B[], long i) {
  if (i < 4) { A[i] = B[i] * 2.0; }
  A[i+8] = 1.0;
}
|};
    ]

(* --- Graph invariants ------------------------------------------------------ *)

let test_invariants_on_registry_graphs () =
  List.iter
    (fun (k : Snslp_kernels.Registry.t) ->
      let f = compile k.Snslp_kernels.Registry.source in
      (* Scalar canonicalisation first, as the pipeline would. *)
      ignore (Snslp_passes.Fold.run f);
      ignore (Snslp_passes.Simplify.run f);
      ignore (Snslp_passes.Cse.run f);
      List.iter
        (fun fd -> Alcotest.failf "%s: %s" k.Snslp_kernels.Registry.name
            (Finding.to_string fd))
        (Lint.vector_invariants Config.snslp f))
    Snslp_kernels.Registry.all

(* --- Lint sweep over the evaluation assets --------------------------------- *)

let test_lint_sweep_registry () =
  List.iter
    (fun (k : Snslp_kernels.Registry.t) ->
      let f = compile k.Snslp_kernels.Registry.source in
      List.iter
        (fun fd -> Alcotest.failf "%s: %s" k.Snslp_kernels.Registry.name
            (Finding.to_string fd))
        (Finding.errors (Lint.run ~bound:Oracle.buffer_size f)))
    Snslp_kernels.Registry.all

let test_lint_sweep_fullbench () =
  List.iter
    (fun (fb : Snslp_kernels.Fullbench.t) ->
      List.iter
        (fun f ->
          List.iter
            (fun fd -> Alcotest.failf "%s: %s" fb.Snslp_kernels.Fullbench.name
                (Finding.to_string fd))
            (Finding.errors (Lint.run f)))
        (Snslp_frontend.Frontend.compile (Snslp_kernels.Fullbench.source fb)))
    Snslp_kernels.Fullbench.all

(* --- The 500-seed property ------------------------------------------------- *)

let validated_settings : (string * Pipeline.setting) list =
  [
    ("o3", None);
    ("slp", Some Config.vanilla);
    ("lslp", Some Config.lslp);
    ("snslp", Some Config.snslp);
  ]

(* Generated IR is lint-clean, and every configuration's pipeline
   validates Valid or Unknown — never Mismatch — with no graph
   invariant violations. *)
let prop_generated_ir_validates =
  QCheck.Test.make ~count:500 ~name:"generated IR lints clean and validates"
    (QCheck.make (QCheck.Gen.int_bound 1_000_000))
    (fun seed ->
      let func = Gen.generate ~seed () in
      (match Finding.errors (Lint.run ~bound:Oracle.buffer_size func) with
      | [] -> ()
      | fd :: _ ->
          QCheck.Test.fail_reportf "seed %d: %s" seed (Finding.to_string fd));
      let tolerance = Gen.tolerance_for func in
      List.iter
        (fun (name, setting) ->
          let result = Pipeline.run ~setting ~validate:true ~tolerance func in
          match result.Pipeline.validation with
          | None -> QCheck.Test.fail_reportf "seed %d %s: no validation record" seed name
          | Some v ->
              List.iter
                (fun (pass, verdict) ->
                  match verdict with
                  | Validate.Mismatch { where; detail } ->
                      QCheck.Test.fail_reportf "seed %d %s pass %s: mismatch @%s: %s"
                        seed name pass where detail
                  | Validate.Valid | Validate.Unknown _ -> ())
                v.Pipeline.pass_verdicts;
              (match v.Pipeline.end_verdict with
              | Validate.Mismatch { where; detail } ->
                  QCheck.Test.fail_reportf "seed %d %s end-to-end: mismatch @%s: %s"
                    seed name where detail
              | Validate.Valid | Validate.Unknown _ -> ());
              List.iter
                (fun msg ->
                  QCheck.Test.fail_reportf "seed %d %s: graph invariant: %s" seed name msg)
                v.Pipeline.graph_findings)
        validated_settings;
      true)

(* --- The static side-channel of the oracle --------------------------------- *)

let flip_first_float_add (f : Defs.func) =
  let flipped = ref false in
  Func.iter_instrs
    (fun i ->
      if
        (not !flipped)
        && i.Defs.op = Defs.Binop Defs.Add
        && Ty.scalar_is_float (Ty.elem i.Defs.ty)
      then begin
        i.Defs.op <- Defs.Binop Defs.Sub;
        flipped := true
      end)
    f

(* The PR-3 reduced-reproducer class must be caught by the *validator*
   — a static proof, independent of the interpreter diff. *)
let test_static_mismatch_on_injected_bug () =
  let func = Ir_parser.parse Test_fuzz.reduced_repro_inverse_pair in
  Fun.protect
    ~finally:(fun () -> Oracle.inject_bug := None)
    (fun () ->
      Oracle.inject_bug := Some flip_first_float_add;
      let findings = Oracle.run_case func in
      check "validator flags the injected bug statically" true
        (List.exists
           (fun (fd : Oracle.finding) ->
             match fd.Oracle.kind with Oracle.Static_mismatch _ -> true | _ -> false)
           findings);
      (* And the flag really gates the static side-channel. *)
      let without = Oracle.run_case ~validate:false func in
      check "no static findings with validation off" false
        (List.exists
           (fun (fd : Oracle.finding) ->
             match fd.Oracle.kind with Oracle.Static_mismatch _ -> true | _ -> false)
           without))

(* Clean functions produce no static findings through the oracle. *)
let test_oracle_validates_clean () =
  let func = Ir_parser.parse Test_fuzz.reduced_repro_inverse_pair in
  List.iter
    (fun fd -> Alcotest.failf "unexpected finding: %s" (Oracle.finding_to_string fd))
    (Oracle.run_case func)

let suite =
  [
    ( "lint",
      [
        Alcotest.test_case "liveness: straight line" `Quick test_liveness_straightline;
        Alcotest.test_case "liveness: diamond" `Quick test_liveness_diamond;
        Alcotest.test_case "reaching stores" `Quick test_reaching_stores;
        Alcotest.test_case "available exprs killed by store" `Quick
          test_avail_load_killed_by_store;
        Alcotest.test_case "check: use of undef" `Quick test_check_undef;
        Alcotest.test_case "check: dead store" `Quick test_check_dead_store;
        Alcotest.test_case "check: out of bounds" `Quick test_check_bounds;
        Alcotest.test_case "check: memory kinds" `Quick test_check_memory_kind;
        Alcotest.test_case "verifier errors carry the instruction" `Quick
          test_verifier_where_pretty;
        Alcotest.test_case "validate: reassociation" `Quick test_validate_reassociation;
        Alcotest.test_case "validate: additive inverse pair" `Quick
          test_validate_inverse_cancellation;
        Alcotest.test_case "validate: multiplicative inverse pair" `Quick
          test_validate_mul_div_inverse;
        Alcotest.test_case "validate: sign flip is a mismatch" `Quick
          test_validate_sign_flip_mismatch;
        Alcotest.test_case "validate: dropped store is a mismatch" `Quick
          test_validate_missing_store_mismatch;
        Alcotest.test_case "validate: loops are unknown" `Quick test_validate_loop_unknown;
        Alcotest.test_case "validate: if-conversion" `Quick test_validate_ifconv;
        Alcotest.test_case "graph invariants hold on registry kernels" `Quick
          test_invariants_on_registry_graphs;
        Alcotest.test_case "lint sweep: registry" `Quick test_lint_sweep_registry;
        Alcotest.test_case "lint sweep: fullbench" `Slow test_lint_sweep_fullbench;
        QCheck_alcotest.to_alcotest prop_generated_ir_validates;
        Alcotest.test_case "oracle: static mismatch on injected bug" `Quick
          test_static_mismatch_on_injected_bug;
        Alcotest.test_case "oracle: clean case stays clean" `Quick
          test_oracle_validates_clean;
      ] );
  ]

(* Tests for the loop subsystem: KernelC [for] lowering, natural-loop
   analysis and counted-loop recognition, full/partial unrolling, the
   jam pass, engine parity on back-edge CFGs, the validator's
   follow-through after full unroll, and the verifier's terminator
   hardening. *)

open Snslp_ir
open Snslp_passes
module Loops = Snslp_loops.Loops
module Oracle = Snslp_fuzzer.Oracle
module Interp = Snslp_interp.Interp
module Memory = Snslp_interp.Memory
module Rvalue = Snslp_interp.Rvalue
module Config = Snslp_vectorizer.Config

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let compile = Snslp_frontend.Frontend.compile_one

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let count_phis f =
  Func.fold_instrs
    (fun n i -> match i.Defs.op with Defs.Phi _ -> n + 1 | _ -> n)
    0 f

(* --- Sources ------------------------------------------------------------- *)

let saxpy8_src =
  {|
kernel saxpy8(double a[], double b[], double c[], long i) {
  for (long k = 0; k < 8; k = k + 1) {
    c[i + k] = a[i + k] * 2.0 + b[i + k];
  }
}
|}

let saxpy_n_src =
  {|
kernel saxpy_n(double a[], double b[], double c[], long n) {
  for (long k = 0; k < n; k = k + 1) {
    c[k] = a[k] * 2.0 + b[k];
  }
}
|}

let down_src =
  {|
kernel down(double a[], double c[], long i) {
  for (long k = 8; k > 0; k = k - 2) {
    c[k] = a[k] - 1.0;
  }
}
|}

let zero_trip_src =
  {|
kernel zt(double a[], double c[], long i) {
  c[0] = 1.0;
  for (long k = 5; k < 5; k = k + 1) {
    c[k] = a[k];
  }
  c[1] = 2.0;
}
|}

let nested_src =
  {|
kernel nest(double a[], double c[], long i) {
  for (long j = 0; j < 3; j = j + 1) {
    for (long k = 0; k < 4; k = k + 1) {
      c[j * 4 + k] = a[j * 4 + k] + 1.0;
    }
  }
}
|}

let if_in_loop_src =
  {|
kernel cond_loop(double a[], double c[], long i) {
  for (long k = 0; k < 6; k = k + 1) {
    if (k < 3) { c[k] = a[k] * 2.0; } else { c[k] = a[k] + 1.0; }
  }
}
|}

let two_loops_src =
  {|
kernel two(double a[], double c[], long n) {
  for (long k = 0; k < 4; k = k + 1) {
    c[k] = a[k] + 1.0;
  }
  for (long k = 0; k < n; k = k + 1) {
    c[k + 8] = a[k] * 3.0;
  }
}
|}

(* --- Helpers ------------------------------------------------------------- *)

(* Interpret [func] (tree engine) with fresh double buffers for its
   array params and [n] for the trailing integer param. *)
let run_with func ~arrays ~n =
  let memory = Memory.create () in
  List.iteri
    (fun pos _ ->
      Memory.set_float_buffer memory ~arg_pos:pos
        (Array.init 64 (fun k -> float_of_int ((k mod 9) + 1) *. 0.5)))
    arrays;
  let args =
    Array.of_list
      (List.mapi (fun pos _ -> Rvalue.R_ptr { base = pos; offset = 0 }) arrays
      @ [ Rvalue.R_int (Int64.of_int n) ])
  in
  Interp.run func ~args ~memory;
  memory

let the_counted f =
  let forest = Loops.analyze f in
  match forest.Loops.loops with
  | [ l ] -> (
      match Loops.as_counted f l with
      | Some c -> c
      | None -> Alcotest.fail "loop not recognized as counted")
  | ls -> Alcotest.failf "expected one loop, found %d" (List.length ls)

(* --- Lowering + analysis ------------------------------------------------- *)

let test_for_lowering_shape () =
  let f = compile saxpy8_src in
  (* preheader (entry), header, body, latch, exit *)
  check_int "five blocks" 5 (List.length (Func.blocks f));
  check_int "one phi" 1 (count_phis f);
  let c = the_counted f in
  check "entry is preheader" true (Block.equal c.Loops.preheader (Func.entry f));
  check_int "trip count 8" 8
    (match Loops.trip_count c with Some n -> n | None -> -1);
  check "step 1" true (Int64.equal c.Loops.step 1L);
  check "monotone" true (Loops.monotone c)

let test_negative_step () =
  let f = compile down_src in
  let c = the_counted f in
  check "step -2" true (Int64.equal c.Loops.step (-2L));
  check_int "trip count 4" 4
    (match Loops.trip_count c with Some n -> n | None -> -1);
  check "monotone downward" true (Loops.monotone c)

let test_zero_trip_count () =
  let f = compile zero_trip_src in
  let c = the_counted f in
  check_int "trip count 0" 0
    (match Loops.trip_count c with Some n -> n | None -> -1)

let test_symbolic_bound () =
  let f = compile saxpy_n_src in
  let c = the_counted f in
  check "no static trip count" true (Loops.trip_count c = None);
  check "monotone" true (Loops.monotone c)

let test_nonmonotone_ne_never_hits () =
  (* k != 5 stepping by 2 from 0 never hits 5: the simulation runs to
     the cap and reports no trip count, and Ne is not monotone. *)
  let f =
    compile
      {|
kernel ne(double c[], long i) {
  for (long k = 0; k != 5; k = k + 2) {
    c[0] = 1.0;
  }
}
|}
  in
  let c = the_counted f in
  check "cap exceeded" true (Loops.trip_count c = None);
  check "Ne not monotone" true (not (Loops.monotone c))

let test_nested_forest () =
  let f = compile nested_src in
  let forest = Loops.analyze f in
  check_int "two loops" 2 (List.length forest.Loops.loops);
  check_int "one root" 1 (List.length forest.Loops.roots);
  let outer = List.hd forest.Loops.roots in
  check_int "outer depth" 1 outer.Loops.depth;
  (match outer.Loops.children with
  | [ inner ] ->
      check_int "inner depth" 2 inner.Loops.depth;
      check "inner parent" true
        (match inner.Loops.parent with
        | Some p -> Block.equal p.Loops.header outer.Loops.header
        | None -> false);
      check "inner nested in outer" true
        (Loops.mem outer inner.Loops.header);
      (* Only the innermost loop is counted: the outer loop contains
         the inner phi, breaking the one-phi rule. *)
      check "inner counted" true (Loops.as_counted f inner <> None);
      check "outer not counted" true (Loops.as_counted f outer = None)
  | _ -> Alcotest.fail "outer loop has no single child")

let test_frontend_rejects_array_bound () =
  let bad =
    {|
kernel bad(double a[], double c[], long i) {
  for (long k = 0; k < a[0]; k = k + 1) {
    c[k] = 1.0;
  }
}
|}
  in
  match compile bad with
  | _ -> Alcotest.fail "array-read bound must be rejected"
  | exception Snslp_frontend.Frontend.Error m ->
      check "names the bound" true (contains m "loop bound")

let test_frontend_rejects_float_iv () =
  let bad =
    {|
kernel bad(double c[], long i) {
  for (double k = 0.0; k < 4; k = k + 1) {
    c[0] = 1.0;
  }
}
|}
  in
  match compile bad with
  | _ -> Alcotest.fail "float induction variable must be rejected"
  | exception Snslp_frontend.Frontend.Error m ->
      check "names the variable" true (contains m "integer type")

(* --- Unrolling ----------------------------------------------------------- *)

let test_full_unroll_direct () =
  let f = compile saxpy8_src in
  let g = Func.clone f in
  let r = Unroll.run ~policy:Unroll.Auto g in
  check_int "one loop" 1 r.Unroll.loops;
  check_int "one counted" 1 r.Unroll.counted;
  check_int "fully unrolled" 1 r.Unroll.full;
  check_int "no partial" 0 r.Unroll.partial;
  check_int "no phi left" 0 (count_phis g);
  Verifier.verify_exn g;
  let arrays = [ "a"; "b"; "c" ] in
  List.iter
    (fun n ->
      check "full unroll preserves semantics" true
        (Memory.equal (run_with f ~arrays ~n) (run_with g ~arrays ~n)))
    [ 0; 8 ]

let test_partial_unroll_direct () =
  let f = compile saxpy_n_src in
  let arrays = [ "a"; "b"; "c" ] in
  List.iter
    (fun factor ->
      let g = Func.clone f in
      let r = Unroll.run ~policy:(Unroll.Factor factor) g in
      check_int "partially unrolled" 1 r.Unroll.partial;
      Verifier.verify_exn g;
      (* n below / at / above / off the factor, and zero-trip. *)
      List.iter
        (fun n ->
          if
            not (Memory.equal (run_with f ~arrays ~n) (run_with g ~arrays ~n))
          then
            Alcotest.failf "partial unroll by %d changed semantics at n=%d"
              factor n)
        [ 0; 1; factor - 1; factor; factor + 1; (2 * factor) + 1; 17 ])
    [ 2; 3; 4; 6 ]

let test_zero_trip_unroll () =
  let f = compile zero_trip_src in
  let g = Func.clone f in
  let r = Unroll.run ~policy:Unroll.Auto g in
  check_int "zero-trip loop fully unrolled away" 1 r.Unroll.full;
  Verifier.verify_exn g;
  check "surrounding stores survive" true
    (Memory.equal
       (run_with f ~arrays:[ "a"; "c" ] ~n:0)
       (run_with g ~arrays:[ "a"; "c" ] ~n:0))

let test_jam_collapses_unrolled_loop () =
  let f = compile saxpy8_src in
  let g = Func.clone f in
  ignore (Unroll.run ~policy:Unroll.Auto g);
  let merged = Unroll_and_jam.run g in
  check "merged several blocks" true (merged > 0);
  check_int "single straight-line block" 1 (List.length (Func.blocks g));
  Verifier.verify_exn g;
  let arrays = [ "a"; "b"; "c" ] in
  check "jam preserves semantics" true
    (Memory.equal (run_with f ~arrays ~n:8) (run_with g ~arrays ~n:8))

let test_jam_keeps_phi_cfg_valid () =
  (* After a partial unroll the copies chain through plain [Br]s while
     the epilogue header still carries a phi: jamming must retarget
     the phi's predecessor payload to the merged block. *)
  let f = compile saxpy_n_src in
  let g = Func.clone f in
  ignore (Unroll.run ~policy:(Unroll.Factor 4) g);
  let merged = Unroll_and_jam.run g in
  check "merged the unrolled chain" true (merged > 0);
  Verifier.verify_exn g;
  let arrays = [ "a"; "b"; "c" ] in
  List.iter
    (fun n ->
      check "jammed partial unroll preserves semantics" true
        (Memory.equal (run_with f ~arrays ~n) (run_with g ~arrays ~n)))
    [ 0; 3; 4; 9; 16 ]

(* --- Pipeline + validator follow-through --------------------------------- *)

let pass_verdict validation pass =
  match List.assoc_opt pass validation.Pipeline.pass_verdicts with
  | Some v -> v
  | None -> Alcotest.failf "no %s verdict recorded" pass

let test_pipeline_full_unroll_validates () =
  let f = compile saxpy8_src in
  let r = Pipeline.run ~validate:true f in
  (match r.Pipeline.loop_stats with
  | Some ls ->
      check_int "loop found" 1 ls.Pipeline.loops;
      check_int "loop counted" 1 ls.Pipeline.counted;
      check_int "fully unrolled" 1 ls.Pipeline.unrolled_full;
      check "blocks jammed" true (ls.Pipeline.blocks_merged > 0)
  | None -> Alcotest.fail "no loop stats");
  check_int "no phi in output" 0 (count_phis r.Pipeline.func);
  (* Satellite: after a full unroll no loop-carried phi remains, so
     the validator must return real verdicts downstream — [Valid], not
     the loop [Unknown] fallback — in particular for the slp pass. *)
  (match r.Pipeline.validation with
  | Some v ->
      (match pass_verdict v "slp" with
      | Snslp_lint.Validate.Valid -> ()
      | verdict ->
          Alcotest.failf "slp verdict after full unroll: %s"
            (Snslp_lint.Validate.verdict_to_string verdict));
      List.iter
        (fun (pass, verdict) ->
          match verdict with
          | Snslp_lint.Validate.Mismatch _ ->
              Alcotest.failf "pass %s: validator mismatch" pass
          | Snslp_lint.Validate.Valid | Snslp_lint.Validate.Unknown _ -> ())
        v.Pipeline.pass_verdicts
  | None -> Alcotest.fail "no validation record")

let test_pipeline_partial_unroll_unknown_fallback () =
  let f = compile saxpy_n_src in
  let r = Pipeline.run ~validate:true f in
  (match r.Pipeline.loop_stats with
  | Some ls -> check_int "partially unrolled" 1 ls.Pipeline.unrolled_partial
  | None -> Alcotest.fail "no loop stats");
  check "epilogue phi survives" true (count_phis r.Pipeline.func >= 1);
  (* A symbolic-trip loop survives the partial unroll only in the
     relaxed (non-inductive) form — values escape the main loop into
     the epilogue, so the validator stays [Unknown], never
     [Mismatch], and says exactly why. *)
  match r.Pipeline.validation with
  | Some v ->
      (match pass_verdict v "unroll" with
      | Snslp_lint.Validate.Unknown reason ->
          check "reason names the symbolic trip" true (contains reason "symbolic trip")
      | verdict ->
          Alcotest.failf "unroll verdict with residual loop: %s"
            (Snslp_lint.Validate.verdict_to_string verdict));
      List.iter
        (fun (pass, verdict) ->
          match verdict with
          | Snslp_lint.Validate.Mismatch _ ->
              Alcotest.failf "pass %s: validator mismatch" pass
          | Snslp_lint.Validate.Valid | Snslp_lint.Validate.Unknown _ -> ())
        v.Pipeline.pass_verdicts
  | None -> Alcotest.fail "no validation record"

(* The acceptance sweep: every loop-form registry kernel, partially
   unrolled (by 2, by 4) and unroll-and-jammed (auto), validates
   [Valid] end to end — constant trips execute concretely, so the
   digest fallback that used to answer [Unknown] is gone. *)
let test_registry_unroll_policies_validate () =
  List.iter
    (fun ((lk : Snslp_kernels.Registry.t), _) ->
      List.iter
        (fun unroll ->
          let setting = Some { Config.snslp with Config.unroll } in
          let r =
            Pipeline.run ~setting ~validate:true (compile lk.Snslp_kernels.Registry.source)
          in
          match r.Pipeline.validation with
          | None -> Alcotest.failf "%s: no validation record" lk.Snslp_kernels.Registry.name
          | Some v -> (
              match v.Pipeline.end_verdict with
              | Snslp_lint.Validate.Valid -> ()
              | verdict ->
                  Alcotest.failf "%s under %s: %s" lk.Snslp_kernels.Registry.name
                    (match unroll with
                    | Config.No_unroll -> "none"
                    | Config.Unroll_by n -> Printf.sprintf "by %d" n
                    | Config.Unroll_auto -> "auto")
                    (Snslp_lint.Validate.verdict_to_string verdict)))
        [ Config.Unroll_by 2; Config.Unroll_by 4; Config.Unroll_auto ])
    Snslp_kernels.Registry.loop_pairs

let test_pipeline_off_policy_keeps_loop () =
  let f = compile saxpy8_src in
  let setting = Some { Config.default with Config.unroll = Config.No_unroll } in
  let r = Pipeline.run ~setting f in
  check "no loop stats when off" true (r.Pipeline.loop_stats = None);
  check_int "phi survives" 1 (count_phis r.Pipeline.func)

(* --- Differential oracle on loopy kernels -------------------------------- *)

let test_loops_oracle_clean () =
  List.iter
    (fun (name, src) ->
      let f = compile src in
      match Oracle.run_case f with
      | [] -> ()
      | findings ->
          Alcotest.failf "%s: %s" name
            (String.concat "; " (List.map Oracle.finding_to_string findings)))
    [
      ("saxpy8", saxpy8_src);
      ("saxpy_n", saxpy_n_src);
      ("down", down_src);
      ("zero_trip", zero_trip_src);
      ("nested", nested_src);
      ("if_in_loop", if_in_loop_src);
      ("two_loops", two_loops_src);
    ]

(* --- Engine parity on back-edge CFGs ------------------------------------- *)

type outcome = { trap : string option; steps : int; memory : Memory.t }

let run_one engine ?max_steps (func : Defs.func) ~args ~memory : outcome =
  match Interp.exec ~engine ?max_steps func ~args ~memory with
  | steps -> { trap = None; steps; memory }
  | exception e -> { trap = Some (Printexc.to_string e); steps = -1; memory }

let assert_parity ?max_steps name func =
  let a =
    run_one Interp.Tree ?max_steps func ~args:(Oracle.make_args func)
      ~memory:(Oracle.fresh_memory func)
  in
  let b =
    run_one Interp.Compiled ?max_steps func ~args:(Oracle.make_args func)
      ~memory:(Oracle.fresh_memory func)
  in
  (match (a.trap, b.trap) with
  | None, None ->
      if a.steps <> b.steps then
        Alcotest.failf "%s: step counts differ (%d vs %d)" name a.steps b.steps
  | Some x, Some y ->
      if not (String.equal x y) then
        Alcotest.failf "%s: traps differ (%s vs %s)" name x y
  | Some x, None -> Alcotest.failf "%s: only tree trapped (%s)" name x
  | None, Some y -> Alcotest.failf "%s: only compiled trapped (%s)" name y);
  if not (Memory.equal a.memory b.memory) then
    Alcotest.failf "%s: final memories differ" name;
  a

let test_engine_parity_on_loops () =
  List.iter
    (fun (name, src) -> ignore (assert_parity name (compile src)))
    [
      ("saxpy8", saxpy8_src);
      ("saxpy_n", saxpy_n_src);
      ("down", down_src);
      ("zero_trip", zero_trip_src);
      ("nested", nested_src);
      ("two_loops", two_loops_src);
    ]

let test_step_budget_trap_mid_loop () =
  (* A step of 0 is a legal KernelC program that never terminates; the
     recognizer refuses it (step must be non-zero), so it reaches the
     interpreter as a live back-edge loop and must exhaust the step
     budget identically on both engines. *)
  let src =
    {|
kernel spin(double a[], double c[], long i) {
  for (long k = 0; k < 8; k = k + 0) {
    c[k] = a[k] + 1.0;
  }
}
|}
  in
  let f = compile src in
  let forest = Loops.analyze f in
  check_int "loop found" 1 (List.length forest.Loops.loops);
  check "step 0 not counted" true
    (Loops.as_counted f (List.hd forest.Loops.loops) = None);
  let o = assert_parity ~max_steps:500 "spin" f in
  match o.trap with
  | Some m -> check "step budget trap" true (contains m "step budget")
  | None -> Alcotest.fail "runaway loop did not trap"

(* --- Verifier hardening -------------------------------------------------- *)

let test_verifier_reachable_unterminated () =
  let f = Func.create ~name:"bad" ~args:[] in
  let entry = Func.add_block f "entry" in
  let b1 = Func.add_block f "b1" in
  Block.set_terminator entry (Defs.Br b1);
  match Verifier.check f with
  | Error m ->
      check "names the problem" true (contains m "unterminated");
      check "names the block" true (contains m "b1")
  | Ok () -> Alcotest.fail "reachable unterminated block must be an error"

let test_verifier_unreachable_unterminated_ok () =
  let f = Func.create ~name:"stray" ~args:[] in
  let entry = Func.add_block f "entry" in
  Block.set_terminator entry Defs.Ret;
  ignore (Func.add_block f "dead");
  match Verifier.check f with
  | Ok () -> ()
  | Error m -> Alcotest.failf "unreachable unterminated flagged: %s" m

let test_verifier_foreign_branch_target () =
  let other = Func.create ~name:"other" ~args:[] in
  let foreign = Func.add_block other "foreign" in
  Block.set_terminator foreign Defs.Ret;
  let f = Func.create ~name:"bad" ~args:[] in
  let entry = Func.add_block f "entry" in
  Block.set_terminator entry (Defs.Br foreign);
  match Verifier.check f with
  | Error m ->
      check "names the check" true (contains m "branch target");
      check "names the target" true (contains m "foreign");
      (* The offending terminator is pretty-printed in the report. *)
      check "prints the terminator" true (contains m "br ")
  | Ok () -> Alcotest.fail "branch to a foreign block must be an error"

(* --- Generated loops: unroll property and campaign ----------------------- *)

(* 500 seeds: on generated loopy functions, unrolling (full or by a
   factor) followed by jamming is semantics-preserving and leaves
   well-formed IR.  Unroll never reassociates, so even float memories
   must match bit for bit. *)
let prop_unroll_preserves_semantics =
  QCheck.Test.make ~count:500 ~name:"unroll preserves semantics on loopy functions"
    QCheck.(make Gen.(int_range 0 1_000_000))
    (fun seed ->
      let f =
        Snslp_fuzzer.Gen.generate ~profile:Snslp_fuzzer.Gen.loopy_profile ~seed ()
      in
      let g = Func.clone f in
      let policy =
        if seed mod 2 = 0 then Unroll.Auto else Unroll.Factor (2 + (seed mod 5))
      in
      ignore (Unroll.run ~policy g);
      ignore (Unroll_and_jam.run g);
      (match Verifier.check g with
      | Ok () -> ()
      | Error m -> QCheck.Test.fail_reportf "unrolled IR malformed: %s" m);
      if not (Memory.equal (Oracle.run_memory f) (Oracle.run_memory g)) then
        QCheck.Test.fail_reportf "unroll changed semantics at seed %d" seed;
      true)

(* The acceptance campaign: 1000 generated loopy cases through every
   pipeline configuration (which all unroll under [Unroll_auto]),
   differentially checked against the scalar -O3 reference that keeps
   its loops. *)
let test_loopy_campaign () =
  let result =
    Snslp_fuzzer.Campaign.run ~profile:Snslp_fuzzer.Gen.loopy_profile ~seed:11
      ~cases:1000 ()
  in
  check_int "cases" 1000 result.Snslp_fuzzer.Campaign.cases;
  if not (Snslp_fuzzer.Campaign.clean result) then
    Alcotest.failf "loopy campaign found %d failing cases"
      (List.length result.Snslp_fuzzer.Campaign.reports)

(* --- Registry loop kernels ------------------------------------------------ *)

(* Each loop-form registry kernel, compiled through the full default
   pipeline (unroll, jam, SN-SLP), must (a) report exactly one full
   unroll with no residual phi and (b) give bit-identical interpreter
   memory to its straight-line twin's pipeline output on the same
   inputs.  Buffers are sized for milc_mat_vec_loop's a[144*i+17]
   reach at the shared index argument. *)
module Registry = Snslp_kernels.Registry
module Workload = Snslp_kernels.Workload

let kernel_index = 8
let kernel_buffer_size = 2048

let kernel_memory func =
  let memory = Memory.create () in
  Array.iter
    (fun (a : Defs.arg) ->
      match a.Defs.arg_ty with
      | Ty.Ptr s when Ty.scalar_is_float s ->
          Memory.set_float_buffer memory ~arg_pos:a.Defs.arg_pos
            (Array.init kernel_buffer_size
               (Workload.float_value ~seed:(a.Defs.arg_pos + 1)))
      | Ty.Ptr _ ->
          Memory.set_int_buffer memory ~arg_pos:a.Defs.arg_pos
            (Array.init kernel_buffer_size
               (Workload.int_value ~seed:(a.Defs.arg_pos + 1)))
      | Ty.Scalar _ | Ty.Vector _ -> ())
    (Func.args func);
  memory

let kernel_args func =
  Array.map
    (fun (a : Defs.arg) ->
      match a.Defs.arg_ty with
      | Ty.Ptr _ -> Rvalue.R_ptr { base = a.Defs.arg_pos; offset = 0 }
      | Ty.Scalar s when Ty.scalar_is_int s ->
          Rvalue.R_int (Int64.of_int kernel_index)
      | Ty.Scalar _ -> Rvalue.R_float 1.5
      | Ty.Vector _ -> Rvalue.R_undef)
    (Func.args func)

let run_kernel func =
  let memory = kernel_memory func in
  Interp.run func ~args:(kernel_args func) ~memory;
  memory

let test_registry_loop_twins () =
  List.iter
    (fun ((lk : Registry.t), (tw : Registry.t)) ->
      let lr = Pipeline.run (compile lk.Registry.source) in
      let tr = Pipeline.run (compile tw.Registry.source) in
      (match lr.Pipeline.loop_stats with
      | Some s ->
          check_int (lk.Registry.name ^ " fully unrolled") 1 s.Pipeline.unrolled_full
      | None -> Alcotest.failf "%s: no loop stats" lk.Registry.name);
      check (lk.Registry.name ^ " no residual phi") true
        (count_phis lr.Pipeline.func = 0);
      check
        (lk.Registry.name ^ " matches " ^ tw.Registry.name)
        true
        (Memory.equal (run_kernel lr.Pipeline.func) (run_kernel tr.Pipeline.func)))
    Registry.loop_pairs

(* --- Config fingerprint isolation ---------------------------------------- *)

let test_fingerprint_isolates_unroll () =
  let fp u = Config.fingerprint { Config.default with Config.unroll = u } in
  let a = fp Config.No_unroll in
  let b = fp (Config.Unroll_by 4) in
  let c = fp Config.Unroll_auto in
  check "none vs factor" true (a <> b);
  check "none vs auto" true (a <> c);
  check "factor vs auto" true (b <> c);
  check "factors distinct" true (fp (Config.Unroll_by 2) <> b)

let suite =
  [
    ( "loops",
      [
        Alcotest.test_case "for lowering shape" `Quick test_for_lowering_shape;
        Alcotest.test_case "negative step" `Quick test_negative_step;
        Alcotest.test_case "zero trip count" `Quick test_zero_trip_count;
        Alcotest.test_case "symbolic bound" `Quick test_symbolic_bound;
        Alcotest.test_case "ne never hits" `Quick test_nonmonotone_ne_never_hits;
        Alcotest.test_case "nested forest" `Quick test_nested_forest;
        Alcotest.test_case "rejects array bound" `Quick
          test_frontend_rejects_array_bound;
        Alcotest.test_case "rejects float iv" `Quick test_frontend_rejects_float_iv;
        Alcotest.test_case "full unroll direct" `Quick test_full_unroll_direct;
        Alcotest.test_case "partial unroll direct" `Quick test_partial_unroll_direct;
        Alcotest.test_case "zero-trip unroll" `Quick test_zero_trip_unroll;
        Alcotest.test_case "jam collapses unrolled loop" `Quick
          test_jam_collapses_unrolled_loop;
        Alcotest.test_case "jam keeps phi cfg valid" `Quick
          test_jam_keeps_phi_cfg_valid;
        Alcotest.test_case "pipeline full unroll validates" `Quick
          test_pipeline_full_unroll_validates;
        Alcotest.test_case "pipeline partial unroll unknown" `Quick
          test_pipeline_partial_unroll_unknown_fallback;
        Alcotest.test_case "registry unroll policies validate" `Quick
          test_registry_unroll_policies_validate;
        Alcotest.test_case "pipeline off policy keeps loop" `Quick
          test_pipeline_off_policy_keeps_loop;
        Alcotest.test_case "oracle clean on loopy kernels" `Quick
          test_loops_oracle_clean;
        Alcotest.test_case "engine parity on loops" `Quick
          test_engine_parity_on_loops;
        Alcotest.test_case "step budget trap mid-loop" `Quick
          test_step_budget_trap_mid_loop;
        Alcotest.test_case "verifier reachable unterminated" `Quick
          test_verifier_reachable_unterminated;
        Alcotest.test_case "verifier unreachable untermined ok" `Quick
          test_verifier_unreachable_unterminated_ok;
        Alcotest.test_case "verifier foreign branch target" `Quick
          test_verifier_foreign_branch_target;
        Alcotest.test_case "registry loop twins" `Quick test_registry_loop_twins;
        Alcotest.test_case "fingerprint isolates unroll" `Quick
          test_fingerprint_isolates_unroll;
        QCheck_alcotest.to_alcotest prop_unroll_preserves_semantics;
        Alcotest.test_case "loopy campaign (1000 cases)" `Slow test_loopy_campaign;
      ] );
  ]

(* Test runner: aggregates the per-module suites. *)

let () =
  Alcotest.run "snslp"
    (Test_ir.suite @ Test_frontend.suite @ Test_analysis.suite @ Test_interp.suite
   @ Test_passes.suite @ Test_vectorizer.suite @ Test_simperf.suite
   @ Test_differential.suite @ Test_properties.suite @ Test_reduction.suite @ Test_supernode.suite @ Test_ir_parser.suite @ Test_ifconv.suite @ Test_costmodel.suite @ Test_report.suite @ Test_edge_cases.suite @ Test_parallel.suite @ Test_fuzz.suite @ Test_engines.suite @ Test_lint.suite @ Test_service.suite @ Test_packing.suite @ Test_loops.suite @ Test_revec.suite)

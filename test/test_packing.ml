(* Global pack selection (Packing + Vectorize.run_global):
   - every trial graph the enumerator builds satisfies the PR-5
     structural invariants;
   - beam 1 disables the search entirely and is bit-identical to the
     greedy path;
   - the solver prefers a compatible subset over the greedy-order
     first pick when the subset is cheaper (the point of the search);
   - end to end, the global pick is never statically worse than
     greedy, on the registry and on fuzz-generated functions;
   - the three registry kernels built around greedy's blind spots are
     strict wins. *)

open Snslp_ir
open Snslp_vectorizer
module Pipeline = Snslp_passes.Pipeline
module Gen = Snslp_fuzzer.Gen
module Registry = Snslp_kernels.Registry

let check = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let global ?(beam = Config.default_beam) ?(node_budget = Config.default_node_budget) () =
  { Config.snslp with Config.packing = Config.Global { beam; node_budget } }

let compile_kernel (k : Registry.t) = Snslp_frontend.Frontend.compile_one k.Registry.source

let fuzz_funcs = List.init 40 (fun k -> Gen.generate ~seed:(1000 + (37 * k)) ())

(* --- Enumerator legality ------------------------------------------------- *)

(* Every candidate's trial graph must pass the independent structural
   re-derivation — the enumerator explores strictly more graphs than
   greedy ever builds (shifted windows, exhaustive reorders), and all
   of them must be legal. *)
let test_enumerator_invariants () =
  let funcs = List.map compile_kernel Registry.all @ fuzz_funcs in
  let graphs = ref 0 in
  List.iter
    (fun f ->
      let f = Func.clone f in
      Packing.enumerate
        ~on_graph:(fun g ->
          incr graphs;
          match Invariants.check g with
          | [] -> ()
          | vs ->
              Alcotest.failf "@%s: trial graph violates invariants: %s" f.Defs.fname
                (String.concat "; " vs))
        ~node_budget:0 (global ()) f
      |> ignore)
    funcs;
  check "enumerated something" true (!graphs > 50)

(* --- Beam 1 is greedy ----------------------------------------------------- *)

let run_packing packing f =
  let setting = Some { Config.snslp with Config.packing } in
  (Pipeline.run ~setting (Func.clone f)).Pipeline.func |> Printer.func_to_string

let test_beam1_is_greedy () =
  List.iter
    (fun f ->
      check_str
        (Printf.sprintf "@%s beam-1 = greedy" f.Defs.fname)
        (run_packing Config.Greedy f)
        (run_packing (Config.Global { beam = 1; node_budget = 0 }) f))
    (List.map compile_kernel Registry.all @ fuzz_funcs)

(* --- The solver beats the greedy-order pick ------------------------------- *)

(* Three synthetic candidates in greedy preference order: the first
   claims everything and saves 5; the pair behind it is compatible
   and saves 8 together.  A greedy-order subset keeps only the first;
   the solver must return the pair as its best plan. *)
let cand cid est_cost claims =
  {
    Packing.cid;
    bid = 0;
    seed_iids = [];
    width = 2;
    reorder = Graph.R_chain;
    est_cost;
    claims;
  }

let test_solver_beats_greedy_order () =
  let cands = [ cand 0 (-5.0) [ 1; 2; 3; 4 ]; cand 1 (-4.0) [ 1; 2 ]; cand 2 (-4.0) [ 3; 4 ] ] in
  match Packing.solve ~beam:8 ~max_plans:3 cands with
  | best :: _ ->
      let cost = List.fold_left (fun a (c : Packing.candidate) -> a +. c.Packing.est_cost) 0.0 best in
      Alcotest.(check (float 1e-9)) "best plan cost" (-8.0) cost;
      Alcotest.(check (list int)) "best plan picks the pair" [ 1; 2 ]
        (List.map (fun (c : Packing.candidate) -> c.Packing.cid) best)
  | [] -> Alcotest.fail "solver returned no plans"

(* Beam truncation and the bound must never yield a plan worse than
   the empty one, at any beam. *)
let test_solver_never_positive () =
  let cands =
    List.init 12 (fun k -> cand k (if k mod 3 = 0 then -2.0 else -1.0) [ k; k + 100 ])
  in
  List.iter
    (fun beam ->
      List.iter
        (fun plan ->
          let cost =
            List.fold_left (fun a (c : Packing.candidate) -> a +. c.Packing.est_cost) 0.0 plan
          in
          check (Printf.sprintf "beam %d plan negative" beam) true (cost < 0.0))
        (Packing.solve ~beam ~max_plans:3 cands))
    [ 2; 3; 8; 64 ]

(* --- Global never statically worse; engineered kernels strictly win ------- *)

let static_of packing f =
  let config = { Config.snslp with Config.packing } in
  let r = Pipeline.run ~setting:(Some config) (Func.clone f) in
  Packing.static_cost config r.Pipeline.func

let test_global_never_worse () =
  List.iter
    (fun f ->
      let greedy = static_of Config.Greedy f in
      let glob =
        static_of
          (Config.Global
             { beam = Config.default_beam; node_budget = Config.default_node_budget })
          f
      in
      if glob > greedy +. 1e-6 then
        Alcotest.failf "@%s: global static cost %.3f > greedy %.3f" f.Defs.fname glob
          greedy)
    (List.map compile_kernel Registry.all @ fuzz_funcs)

let test_engineered_kernels_win () =
  List.iter
    (fun name ->
      let k = Option.get (Registry.find name) in
      let f = compile_kernel k in
      let greedy = static_of Config.Greedy f in
      let glob =
        static_of
          (Config.Global
             { beam = Config.default_beam; node_budget = Config.default_node_budget })
          f
      in
      if not (glob < greedy -. 1e-6) then
        Alcotest.failf "%s: expected a strict global win, got global %.3f vs greedy %.3f"
          name glob greedy)
    [ "lbm_stream"; "leslie_flux"; "calculix_blend" ]

let suite =
  [
    ( "packing",
      [
        Alcotest.test_case "enumerated trial graphs satisfy invariants" `Quick
          test_enumerator_invariants;
        Alcotest.test_case "beam 1 is bit-identical to greedy" `Quick test_beam1_is_greedy;
        Alcotest.test_case "solver beats the greedy-order pick" `Quick
          test_solver_beats_greedy_order;
        Alcotest.test_case "solver plans always beat the empty plan" `Quick
          test_solver_never_positive;
        Alcotest.test_case "global never statically worse (registry + fuzz)" `Quick
          test_global_never_worse;
        Alcotest.test_case "engineered registry kernels strictly win" `Quick
          test_engineered_kernels_win;
      ] );
  ]

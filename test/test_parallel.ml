(* The parallel driver's contract: output is bit-identical to the
   sequential path for every [jobs] value.

   Three layers of evidence:
   - pool unit tests (order preservation, stealing under uneven work,
     exception propagation, inline fallback after shutdown);
   - end-to-end determinism: every registry kernel under every
     vectorizer mode compiles to the same printed IR and the same
     merged counters at jobs=1 and jobs=4;
   - qcheck properties for [Stats.merge]: associativity and the
     [Stats.create ()] identity, which together make the driver's
     index-ordered fold schedule-independent. *)

open Snslp_ir
open Snslp_vectorizer
module Pool = Snslp_parallel.Pool
module Driver = Snslp_driver.Driver

let to_alcotest = QCheck_alcotest.to_alcotest

(* --- Pool unit tests ---------------------------------------------------- *)

let pool_map_order () =
  Pool.with_pool ~jobs:4 (fun pool ->
      let input = Array.init 100 Fun.id in
      (* chunk:1 maximises scheduling freedom — every item may land on
         a different worker, in any order. *)
      let out = Pool.map ~chunk:1 pool (fun x -> x * x) input in
      Alcotest.(check (array int)) "squares in input order"
        (Array.map (fun x -> x * x) input)
        out)

let pool_uneven_work () =
  Pool.with_pool ~jobs:4 (fun pool ->
      (* Heavily skewed work sizes: the worker that draws item 0 is
         busy for a long time, so the others must steal the tail. *)
      let spin n =
        let acc = ref 0 in
        for i = 1 to n do
          acc := (!acc + i) mod 1_000_003
        done;
        !acc
      in
      let input = Array.init 64 (fun i -> if i = 0 then 2_000_000 else 1_000) in
      let out = Pool.map ~chunk:1 pool spin input in
      Alcotest.(check (array int)) "uneven work still lands in order"
        (Array.map spin input) out)

exception Boom of int

let pool_exception_propagates () =
  Pool.with_pool ~jobs:2 (fun pool ->
      (match Pool.map ~chunk:1 pool (fun x -> if x = 7 then raise (Boom x) else x) (Array.init 16 Fun.id) with
      | _ -> Alcotest.fail "expected the worker's exception in the submitter"
      | exception Boom 7 -> ());
      (* The pool must survive a failed map. *)
      let out = Pool.map pool (fun x -> x + 1) [| 1; 2; 3 |] in
      Alcotest.(check (array int)) "pool usable after a failure" [| 2; 3; 4 |] out)

let pool_shutdown_inline () =
  let pool = Pool.create ~jobs:4 in
  Pool.shutdown pool;
  Pool.shutdown pool (* idempotent *);
  let out = Pool.map pool (fun x -> x * 2) [| 1; 2; 3 |] in
  Alcotest.(check (array int)) "maps run inline after shutdown" [| 2; 4; 6 |] out

let pool_map_list_workers () =
  Pool.with_pool ~jobs:3 (fun pool ->
      let seen = Array.make (Pool.size pool) false in
      let out =
        Pool.map_list ~chunk:1 pool
          (fun ~worker x ->
            seen.(worker) <- true;
            x - 1)
          [ 10; 20; 30; 40 ]
      in
      Alcotest.(check (list int)) "map_list preserves order" [ 9; 19; 29; 39 ] out;
      (* Worker ids must stay within the pool size — that is what the
         driver indexes its scratch array by. *)
      Alcotest.(check bool) "worker 0 participates" true seen.(0))

(* --- Cross-jobs determinism on the registry ----------------------------- *)

let compile_kernel (k : Snslp_kernels.Registry.t) =
  Snslp_frontend.Frontend.compile k.Snslp_kernels.Registry.source

let fingerprint results =
  let ir =
    String.concat "\n"
      (List.map (fun (r : Snslp_passes.Pipeline.result) -> Printer.func_to_string r.Snslp_passes.Pipeline.func) results)
  in
  (ir, Driver.merged_stats results)

let check_kernel_mode (k : Snslp_kernels.Registry.t) (mode : Config.mode) () =
  let funcs = compile_kernel k in
  let setting jobs = Some { (Config.with_mode mode Config.default) with Config.jobs = jobs } in
  let ir1, st1 = fingerprint (Driver.run_all ~setting:(setting 1) funcs) in
  let ir4, st4 = fingerprint (Driver.run_all ~setting:(setting 4) funcs) in
  Alcotest.(check string) "printed IR identical at jobs=1 and jobs=4" ir1 ir4;
  Alcotest.(check bool) "merged counters identical at jobs=1 and jobs=4" true
    (Stats.equal_counters st1 st4)

let determinism_tests =
  List.concat_map
    (fun (k : Snslp_kernels.Registry.t) ->
      List.map
        (fun mode ->
          Alcotest.test_case
            (Printf.sprintf "%s/%s jobs=1 == jobs=4" k.Snslp_kernels.Registry.name
               (Config.mode_to_string mode))
            `Slow
            (check_kernel_mode k mode))
        [ Config.Vanilla; Config.Lslp; Config.Snslp ])
    Snslp_kernels.Registry.all

(* A whole-registry batch in one run_all call: the work list is larger
   than any per-kernel call, so chunked distribution and stealing are
   actually exercised. *)
let batch_determinism () =
  let funcs = List.concat_map compile_kernel Snslp_kernels.Registry.all in
  let setting jobs = Some { Config.snslp with Config.jobs = jobs } in
  let base = fingerprint (Driver.run_all ~setting:(setting 1) funcs) in
  List.iter
    (fun jobs ->
      let ir, st = fingerprint (Driver.run_all ~setting:(setting jobs) funcs) in
      Alcotest.(check string)
        (Printf.sprintf "batch IR identical at jobs=%d" jobs)
        (fst base) ir;
      Alcotest.(check bool)
        (Printf.sprintf "batch counters identical at jobs=%d" jobs)
        true
        (Stats.equal_counters (snd base) st))
    [ 2; 4; 8 ]

(* --- Adaptive fan-out --------------------------------------------------- *)

(* [effective_jobs] is a pure clamp: requested, cores, items, and the
   amortisation bound 1 + cost/min_cost_per_domain, floored at 1. *)
let ej = Pool.effective_jobs

let big = 100 * Pool.min_cost_per_domain

let adaptive_clamps () =
  Alcotest.(check int) "requested caps the result" 2
    (ej ~cores:16 ~requested:2 ~items:100 ~total_cost:big ());
  Alcotest.(check int) "a 1-core host runs inline" 1
    (ej ~cores:1 ~requested:8 ~items:100 ~total_cost:big ());
  Alcotest.(check int) "a single item runs inline" 1
    (ej ~cores:16 ~requested:8 ~items:1 ~total_cost:big ());
  Alcotest.(check int) "items cap the fan-out" 3
    (ej ~cores:16 ~requested:8 ~items:3 ~total_cost:big ());
  Alcotest.(check int) "tiny work runs inline" 1
    (ej ~cores:16 ~requested:8 ~items:100 ~total_cost:0 ());
  Alcotest.(check int) "cost bound adds one domain per cost unit" 3
    (ej ~cores:16 ~requested:8 ~items:100
       ~total_cost:(2 * Pool.min_cost_per_domain)
       ());
  Alcotest.(check int) "never below 1" 1
    (ej ~cores:16 ~requested:0 ~items:0 ~total_cost:0 ())

let adaptive_driver_jobs () =
  let func =
    Snslp_frontend.Frontend.compile_one
      "kernel f(long A[], long B[], long i) { A[i] = B[i]; }"
  in
  let setting jobs = Some { Config.snslp with Config.jobs = jobs } in
  Alcotest.(check int) "one tiny function runs inline" 1
    (Driver.adaptive_jobs (setting 8) [ func ]);
  Alcotest.(check int) "never exceeds the requested jobs" 1
    (Driver.adaptive_jobs (setting 1) (List.init 16 (fun _ -> func)))

let adaptive_output_identity () =
  let funcs = List.concat_map compile_kernel Snslp_kernels.Registry.all in
  let setting jobs = Some { Config.snslp with Config.jobs = jobs } in
  let exact = fingerprint (Driver.run_all ~setting:(setting 1) funcs) in
  let adaptive = fingerprint (Driver.run_all_adaptive ~setting:(setting 8) funcs) in
  Alcotest.(check string) "adaptive fan-out changes nothing but wall-clock"
    (fst exact) (fst adaptive);
  Alcotest.(check bool) "merged counters identical" true
    (Stats.equal_counters (snd exact) (snd adaptive))

(* --- Stats.merge properties --------------------------------------------- *)

(* Phase times are generated as small multiples of 0.25: dyadic
   rationals add exactly in binary floating point, so associativity of
   the merged phase sums holds with (=), not approximately. *)
let gen_stats =
  let open QCheck.Gen in
  let dyadic = map (fun n -> float_of_int n *. 0.25) (int_bound 16) in
  let phase_names = [ "slp"; "massage"; "codegen"; "deps" ] in
  let phases = list_size (int_bound 4) (pair (oneofl phase_names) dyadic) in
  let counter = int_bound 50 in
  let sizes = list_size (int_bound 5) (int_range 2 6) in
  map2
    (fun (a, b, c, d, sizes) (e, f, g, h, ph) ->
      let s = Stats.create () in
      s.Stats.graphs_built <- a;
      s.Stats.graphs_vectorized <- b;
      s.Stats.nodes_formed <- c;
      s.Stats.gathers <- d;
      s.Stats.supernode_sizes <- sizes;
      s.Stats.vector_instrs_emitted <- e;
      s.Stats.scalars_erased <- f;
      s.Stats.lookahead_hits <- g;
      s.Stats.reach_hits <- h;
      List.iter (fun (name, t) -> Stats.add_phase s name t) ph;
      s)
    (tup5 counter counter counter counter sizes)
    (tup5 counter counter counter counter phases)

let stats_equal a b =
  Stats.equal_counters a b && Stats.phases_sorted a = Stats.phases_sorted b

let merge_associative =
  QCheck.Test.make ~count:200 ~name:"Stats.merge is associative"
    (QCheck.make (QCheck.Gen.triple gen_stats gen_stats gen_stats))
    (fun (a, b, c) ->
      stats_equal (Stats.merge (Stats.merge a b) c) (Stats.merge a (Stats.merge b c)))

let merge_identity =
  QCheck.Test.make ~count:200 ~name:"Stats.create is a merge identity"
    (QCheck.make gen_stats)
    (fun s ->
      stats_equal (Stats.merge (Stats.create ()) s) s
      && stats_equal (Stats.merge s (Stats.create ())) s)

let suite =
  [
    ( "parallel-pool",
      [
        Alcotest.test_case "map preserves order" `Quick pool_map_order;
        Alcotest.test_case "uneven work is stolen" `Quick pool_uneven_work;
        Alcotest.test_case "exception propagates" `Quick pool_exception_propagates;
        Alcotest.test_case "shutdown falls back inline" `Quick pool_shutdown_inline;
        Alcotest.test_case "map_list order and worker ids" `Quick pool_map_list_workers;
      ] );
    ( "parallel-determinism",
      determinism_tests
      @ [ Alcotest.test_case "whole-registry batch, jobs in {2,4,8}" `Slow batch_determinism ]
    );
    ( "parallel-adaptive",
      [
        Alcotest.test_case "effective_jobs clamps" `Quick adaptive_clamps;
        Alcotest.test_case "adaptive_jobs on real functions" `Quick adaptive_driver_jobs;
        Alcotest.test_case "run_all_adaptive output identity" `Slow adaptive_output_identity;
      ] );
    ( "parallel-stats",
      [ to_alcotest merge_associative; to_alcotest merge_identity ] );
  ]

(* Property-based tests (qcheck, run through alcotest).

   These pin the core invariants:
   - the affine summary of an address expression evaluates to the same
     integer as the expression itself;
   - APOs computed by chain discovery equal the sign tracked while
     generating the expression tree (the paper's parity rule);
   - Super-Node massaging preserves scalar semantics;
   - AST pretty-printing round-trips through the parser;
   - constant folding agrees with the interpreter;
   - the windowed dependence analysis agrees with a brute-force
     transitive closure. *)

open Snslp_ir
open Snslp_vectorizer

let to_alcotest = QCheck_alcotest.to_alcotest

(* --- Affine summaries evaluate correctly -------------------------------- *)

(* Random affine-safe integer expressions over two variables: sums,
   differences, and multiplications by constants. *)
type aexp = A_var of int | A_const of int | A_add of aexp * aexp | A_sub of aexp * aexp | A_cmul of int * aexp

let rec gen_aexp n =
  let open QCheck.Gen in
  if n = 0 then oneof [ map (fun v -> A_var v) (int_bound 1); map (fun c -> A_const (c - 8)) (int_bound 16) ]
  else
    frequency
      [
        (1, map (fun v -> A_var v) (int_bound 1));
        (1, map (fun c -> A_const (c - 8)) (int_bound 16));
        (3, map2 (fun a b -> A_add (a, b)) (gen_aexp (n - 1)) (gen_aexp (n - 1)));
        (3, map2 (fun a b -> A_sub (a, b)) (gen_aexp (n - 1)) (gen_aexp (n - 1)));
        (2, map2 (fun c a -> A_cmul (c - 4, a)) (int_bound 8) (gen_aexp (n - 1)));
      ]

let rec eval_aexp env = function
  | A_var v -> env.(v)
  | A_const c -> c
  | A_add (a, b) -> eval_aexp env a + eval_aexp env b
  | A_sub (a, b) -> eval_aexp env a - eval_aexp env b
  | A_cmul (c, a) -> c * eval_aexp env a

let lower_aexp (b : Builder.t) (f : Defs.func) (e : aexp) : Defs.value =
  let rec go = function
    | A_var v -> Defs.Arg (Func.arg f v)
    | A_const c -> Value.const_int c
    | A_add (x, y) -> Instr.value (Builder.add b (go x) (go y))
    | A_sub (x, y) -> Instr.value (Builder.sub b (go x) (go y))
    | A_cmul (c, x) -> Instr.value (Builder.mul b (Value.const_int c) (go x))
  in
  go e

let affine_matches_eval =
  QCheck.Test.make ~count:300 ~name:"affine summary evaluates like the expression"
    (QCheck.make (QCheck.Gen.sized_size (QCheck.Gen.int_bound 5) gen_aexp))
    (fun e ->
      let f = Func.create ~name:"aff" ~args:[ ("i", Ty.i64); ("j", Ty.i64) ] in
      let entry = Func.add_block f "entry" in
      let b = Builder.create f ~at:entry in
      let v = lower_aexp b f e in
      Builder.ret b;
      let aff = Snslp_analysis.Affine.of_value v in
      (* The affine form must be closed (no opaque vars beyond i/j)
         and evaluate identically for a few assignments. *)
      List.for_all
        (fun (i, j) ->
          let env = [| i; j |] in
          let direct = eval_aexp env e in
          let from_affine =
            Snslp_analysis.Affine.(
              aff.const
              + Snslp_analysis.Affine.Var_map.fold
                  (fun var coeff acc ->
                    match var with
                    | Snslp_analysis.Affine.Var.Arg_var p -> acc + (coeff * env.(p))
                    | Snslp_analysis.Affine.Var.Instr_var _ ->
                        QCheck.Test.fail_report "opaque var in affine-safe expression")
                  aff.terms 0)
          in
          direct = from_affine)
        [ (0, 0); (1, 0); (0, 1); (5, -3); (-7, 11) ])

(* --- APO parity rule ------------------------------------------------------ *)

(* Random chain trees over one family, tracking each leaf's expected
   APO while generating. *)
type ctree = C_leaf | C_node of Defs.binop * ctree * ctree

let gen_ctree ~fam n =
  let open QCheck.Gen in
  let direct = Family.direct_op fam and inverse = Family.inverse_op fam in
  let rec go n =
    if n = 0 then return C_leaf
    else
      frequency
        [
          (1, return C_leaf);
          ( 3,
            map2
              (fun op (a, b) -> C_node (op, a, b))
              (oneofl [ direct; inverse ])
              (pair (go (n - 1)) (go (n - 1))) );
        ]
  in
  go n

(* Expected APOs, in in-order leaf sequence, by the paper's rule: flip
   on the right edge of an inverse operation. *)
let expected_apos (t : ctree) : Apo.t list =
  let rec go t apo acc =
    match t with
    | C_leaf -> apo :: acc
    | C_node (op, l, r) ->
        let acc = go r (Apo.step apo op ~operand_index:1) acc in
        go l (Apo.step apo op ~operand_index:0) acc
  in
  go t Apo.Plus []

let count_leaves t =
  let rec go = function C_leaf -> 1 | C_node (_, l, r) -> go l + go r in
  go t

let apo_parity =
  QCheck.Test.make ~count:300 ~name:"chain discovery matches the APO parity rule"
    (QCheck.make
       ~print:(fun (_, t) -> Printf.sprintf "<tree with %d leaves>" (count_leaves t))
       QCheck.Gen.(
         pair (oneofl [ Family.Add_sub; Family.Mul_div ]) (int_range 1 4)
         >>= fun (fam, depth) -> map (fun t -> (fam, t)) (gen_ctree ~fam depth)))
    (fun (_fam, tree) ->
      QCheck.assume (count_leaves tree >= 3);
      (* Lower the tree to IR: each leaf is a distinct array load. *)
      let nleaves = count_leaves tree in
      let f =
        Func.create ~name:"apo"
          ~args:[ ("A", Ty.ptr Ty.F64); ("out", Ty.ptr Ty.F64) ]
      in
      let entry = Func.add_block f "entry" in
      let b = Builder.create f ~at:entry in
      let base = Defs.Arg (Func.arg f 0) in
      let leaves = Array.make nleaves (Value.const_float 0.0) in
      let next = ref 0 in
      let rec lower = function
        | C_leaf ->
            let g = Builder.gep b base (Value.const_int !next) in
            let l = Builder.load b (Instr.value g) in
            leaves.(!next) <- Instr.value l;
            incr next;
            Instr.value l
        | C_node (op, l, r) ->
            let lv = lower l in
            let rv = lower r in
            Instr.value (Builder.binop b op lv rv)
      in
      let root_v = lower tree in
      let root = match root_v with Defs.Instr i -> i | _ -> assert false in
      let out = Builder.gep b (Defs.Arg (Func.arg f 1)) (Value.const_int 0) in
      ignore (Builder.store b root_v (Instr.value out));
      Builder.ret b;
      Verifier.verify_exn f;
      match Chain.discover Config.snslp f root with
      | None -> QCheck.Test.fail_report "chain should form on a pure family tree"
      | Some chain ->
          let expected = Array.of_list (expected_apos tree) in
          Array.length chain.Chain.leaves = Array.length expected
          && Array.for_all
               (fun (l : Chain.leaf) ->
                 (* Discovery walks in order, so lpos matches the
                    in-order leaf sequence. *)
                 Apo.equal expected.(l.Chain.lpos) l.Chain.lapo)
               chain.Chain.leaves)

(* --- Super-Node massaging preserves semantics ----------------------------- *)

let massage_preserves_semantics =
  QCheck.Test.make ~count:150 ~name:"Super-Node massaging preserves lane semantics"
    QCheck.(make Gen.(pair (int_range 1 10_000) (int_range 2 5)))
    (fun (seed, nterms) ->
      (* Two-lane chains over the same term multiset, scrambled. *)
      let rand = Random.State.make [| seed |] in
      let arrays = [ "A"; "B"; "C" ] in
      let term k =
        ( Random.State.int rand 3 = 0,
          Printf.sprintf "%s[i+%d]" (List.nth arrays (k mod 3)) (Random.State.int rand 3)
        )
      in
      let terms0 = (false, snd (term 0)) :: List.init (nterms - 1) (fun k -> term (k + 1)) in
      let arr = Array.of_list terms0 in
      for k = Array.length arr - 1 downto 1 do
        let j = Random.State.int rand (k + 1) in
        let t = arr.(k) in
        arr.(k) <- arr.(j);
        arr.(j) <- t
      done;
      let rec to_front = function
        | (false, b) :: rest -> (false, b) :: rest
        | (true, b) :: rest -> to_front (rest @ [ (true, b) ])
        | [] -> []
      in
      let terms1 = to_front (Array.to_list arr) in
      let render terms =
        String.concat ""
          (List.mapi
             (fun k (inv, body) ->
               if k = 0 then body else (if inv then " - " else " + ") ^ body)
             terms)
      in
      let src =
        Printf.sprintf
          "kernel m(double O[], double A[], double B[], double C[], long i) {\n\
          \  O[i+0] = %s;\n  O[i+1] = %s;\n}"
          (render terms0) (render terms1)
      in
      let reg =
        {
          Snslp_kernels.Registry.name = "m";
          provenance = "";
          description = "";
          source = src;
          istride = 2;
          extent = 1;
          default_iters = 16;
        }
      in
      let wl = Snslp_kernels.Workload.prepare reg in
      let reference = Snslp_kernels.Workload.run_interp wl wl.Snslp_kernels.Workload.func in
      let sn =
        Snslp_passes.Pipeline.run ~setting:(Some Config.snslp)
          wl.Snslp_kernels.Workload.func
      in
      let got = Snslp_kernels.Workload.run_interp wl sn.Snslp_passes.Pipeline.func in
      Snslp_interp.Memory.equal reference got)

(* --- AST pretty-printing round-trips -------------------------------------- *)

let gen_ast_expr =
  let open QCheck.Gen in
  let leaf =
    oneof
      [
        map (fun v -> Snslp_frontend.Ast.Var [| "x"; "y" |].(v)) (int_bound 1);
        map
          (fun k ->
            Snslp_frontend.Ast.Index
              ("A", { Snslp_frontend.Ast.desc = Snslp_frontend.Ast.Int_lit (Int64.of_int k); epos = { line = 0; col = 0 } }))
          (int_bound 7);
        map (fun f -> Snslp_frontend.Ast.Float_lit (0.25 *. float_of_int f)) (int_bound 64);
      ]
  in
  let wrap desc = { Snslp_frontend.Ast.desc; epos = { line = 0; col = 0 } } in
  let rec go n =
    if n = 0 then map wrap leaf
    else
      frequency
        [
          (1, map wrap leaf);
          ( 3,
            map3
              (fun op a b -> wrap (Snslp_frontend.Ast.Binary (op, a, b)))
              (oneofl Snslp_frontend.Ast.[ Add; Sub; Mul; Div ])
              (go (n - 1)) (go (n - 1)) );
          (1, map (fun a -> wrap (Snslp_frontend.Ast.Unary (Snslp_frontend.Ast.Neg, a))) (go (n - 1)));
        ]
  in
  sized_size (int_bound 5) go

let rec expr_shape (e : Snslp_frontend.Ast.expr) : string =
  match e.Snslp_frontend.Ast.desc with
  (* Numeric literals compare by value: 16.0 prints as "16", which
     reparses as an integer literal; in a double context both denote
     the same constant. *)
  | Snslp_frontend.Ast.Int_lit i -> Printf.sprintf "f%h" (Int64.to_float i)
  | Snslp_frontend.Ast.Float_lit f -> Printf.sprintf "f%h" f
  | Snslp_frontend.Ast.Var v -> "v" ^ v
  | Snslp_frontend.Ast.Index (a, e) -> Printf.sprintf "%s[%s]" a (expr_shape e)
  | Snslp_frontend.Ast.Unary (Snslp_frontend.Ast.Neg, e) -> Printf.sprintf "neg(%s)" (expr_shape e)
  | Snslp_frontend.Ast.Binary (op, a, b) ->
      Printf.sprintf "(%s %s %s)" (expr_shape a) (Snslp_frontend.Ast.binop_to_string op)
        (expr_shape b)
  | Snslp_frontend.Ast.Cmp (op, a, b) ->
      Printf.sprintf "(%s %s %s)" (expr_shape a)
        (Snslp_frontend.Ast.cmpop_to_string op)
        (expr_shape b)

let ast_roundtrip =
  QCheck.Test.make ~count:300 ~name:"AST pretty-printing round-trips through the parser"
    (QCheck.make ~print:(fun e -> Fmt.str "%a" Snslp_frontend.Ast.pp_expr e) gen_ast_expr)
    (fun e ->
      let src =
        Fmt.str "kernel r(double A[], double O[], double x, double y, long i) { O[i] = %a; }"
          Snslp_frontend.Ast.pp_expr e
      in
      match Snslp_frontend.Frontend.parse src with
      | [ { Snslp_frontend.Ast.kbody = [ { Snslp_frontend.Ast.sdesc = Snslp_frontend.Ast.Store (_, _, e'); _ } ]; _ } ]
        ->
          String.equal (expr_shape e) (expr_shape e')
      | _ -> false)

(* --- Constant folding agrees with the interpreter -------------------------- *)

let fold_agrees_with_interp =
  QCheck.Test.make ~count:300 ~name:"constant folding agrees with the interpreter"
    QCheck.(make Gen.(int_range 1 100_000))
    (fun seed ->
      let rand = Random.State.make [| seed |] in
      (* A random constant float expression. *)
      let rec gen n =
        if n = 0 then Printf.sprintf "%d.%d" (Random.State.int rand 8) (25 * Random.State.int rand 4)
        else
          let op = [| " + "; " - "; " * " |].(Random.State.int rand 3) in
          Printf.sprintf "(%s%s%s)" (gen (n - 1)) op (gen (n - 1))
      in
      let src =
        Printf.sprintf "kernel c(double O[], long i) { O[i] = %s; }" (gen (2 + Random.State.int rand 2))
      in
      let f = Snslp_frontend.Frontend.compile_one src in
      let g = Func.clone f in
      ignore (Snslp_passes.Fold.run g);
      (* After folding, the store's operand must be one constant equal
         to what interpreting the original computes. *)
      let memory = Snslp_interp.Memory.create () in
      Snslp_interp.Memory.alloc_float memory ~arg_pos:0 ~size:4;
      Snslp_interp.Interp.run f
        ~args:[| Snslp_interp.Rvalue.R_ptr { base = 0; offset = 0 }; Snslp_interp.Rvalue.R_int 0L |]
        ~memory;
      let expected = (Snslp_interp.Memory.float_buffer memory ~arg_pos:0).(0) in
      let store = List.find Instr.is_store (Block.instrs (Func.entry g)) in
      match Instr.operand store 0 with
      | Defs.Const { lit = Lit.Float got; _ } ->
          Int64.equal (Int64.bits_of_float got) (Int64.bits_of_float expected)
      | _ -> false)

(* --- Windowed dependence analysis matches brute force ----------------------- *)

let deps_match_brute_force =
  QCheck.Test.make ~count:200 ~name:"windowed deps match brute-force closure"
    QCheck.(make Gen.(int_range 1 100_000))
    (fun seed ->
      let rand = Random.State.make [| seed |] in
      (* Random straight-line program over two arrays with mixed loads
         and stores, then compare Deps.depends for all pairs against a
         naive fixpoint closure. *)
      let stmts =
        List.init
          (3 + Random.State.int rand 5)
          (fun _ ->
            let dst = [| "A"; "B" |].(Random.State.int rand 2) in
            let src1 = [| "A"; "B" |].(Random.State.int rand 2) in
            Printf.sprintf "  %s[i+%d] = %s[i+%d] + 1.0;" dst (Random.State.int rand 3)
              src1 (Random.State.int rand 3))
      in
      let src =
        Printf.sprintf "kernel d(double A[], double B[], long i) {\n%s\n}"
          (String.concat "\n" stmts)
      in
      let f = Snslp_frontend.Frontend.compile_one src in
      let blk = Func.entry f in
      let deps = Snslp_analysis.Deps.of_block blk in
      let instrs = Array.of_list (Block.instrs blk) in
      let n = Array.length instrs in
      (* Brute force: direct edges then Floyd-Warshall-ish closure. *)
      let direct = Array.make_matrix n n false in
      let index = Hashtbl.create 32 in
      Array.iteri (fun k i -> Hashtbl.replace index i.Defs.iid k) instrs;
      Array.iteri
        (fun k i ->
          Array.iter
            (fun o ->
              match o with
              | Defs.Instr d -> (
                  match Hashtbl.find_opt index d.Defs.iid with
                  | Some dk when dk < k -> direct.(dk).(k) <- true
                  | _ -> ())
              | _ -> ())
            i.Defs.ops;
          match Snslp_analysis.Deps.memloc_of_instr i with
          | None -> ()
          | Some li ->
              for j = 0 to k - 1 do
                match Snslp_analysis.Deps.memloc_of_instr instrs.(j) with
                | Some lj
                  when (Instr.writes_memory i || Instr.writes_memory instrs.(j))
                       && Snslp_analysis.Deps.may_overlap li lj ->
                    direct.(j).(k) <- true
                | _ -> ()
              done)
        instrs;
      let closure = Array.map Array.copy direct in
      for m = 0 to n - 1 do
        for a = 0 to n - 1 do
          for b = 0 to n - 1 do
            if closure.(a).(m) && closure.(m).(b) then closure.(a).(b) <- true
          done
        done
      done;
      let ok = ref true in
      for a = 0 to n - 1 do
        for b = 0 to n - 1 do
          let got = Snslp_analysis.Deps.depends deps ~on:instrs.(a) instrs.(b) in
          if got <> closure.(a).(b) then ok := false
        done
      done;
      !ok)

(* --- Seed chunking invariants ---------------------------------------------- *)

let seeds_chunk_invariants =
  QCheck.Test.make ~count:200 ~name:"seed chunking preserves order and membership"
    QCheck.(make Gen.(pair (int_range 2 40) (int_range 2 8)))
    (fun (run_len, width) ->
      (* A synthetic run of adjacent stores. *)
      let stmts =
        List.init run_len (fun k -> Printf.sprintf "  A[i+%d] = %d.0;" k k)
        |> String.concat "\n"
      in
      let src = Printf.sprintf "kernel s(double A[], long i) {\n%s\n}" stmts in
      let f = Snslp_frontend.Frontend.compile_one src in
      match Snslp_vectorizer.Seeds.runs (Func.entry f) with
      | [ run ] ->
          let groups, rest = Snslp_vectorizer.Seeds.chunk ~width run in
          (* Instructions sit in cyclic structures (block back
             pointers), so compare by id. *)
          let ids l = List.map (fun (i : Defs.instr) -> i.Defs.iid) l in
          List.for_all (fun g -> List.length g = width) groups
          && (List.length groups * width) + List.length rest = run_len
          && ids (List.concat groups @ rest) = ids run
          (* recut of the full run gives it back. *)
          && (match Snslp_vectorizer.Seeds.recut run with
             | [ r ] -> ids r = ids run
             | _ -> false)
      | _ -> false)

let widths_are_decreasing_powers =
  QCheck.Test.make ~count:100 ~name:"seed widths are descending powers of two"
    QCheck.(make Gen.(int_range 0 64))
    (fun max_width ->
      let ws = Snslp_vectorizer.Seeds.widths ~max_width in
      let pow2 k = k land (k - 1) = 0 in
      List.for_all (fun w -> w >= 2 && w <= max_width && pow2 w) ws
      &&
      let rec desc = function
        | a :: (b :: _ as rest) -> a = 2 * b && desc rest
        | _ -> true
      in
      desc ws)

(* --- Look-ahead scoring sanity ---------------------------------------------- *)

let lookahead_nonnegative_and_reflexive =
  QCheck.Test.make ~count:150 ~name:"look-ahead scores are >= 0; splat maximal shallow"
    QCheck.(make Gen.(int_range 1 100_000))
    (fun seed ->
      let rand = Random.State.make [| seed |] in
      let src =
        Printf.sprintf
          "kernel l(double A[], double B[], long i) { A[i] = B[i+%d] * B[i+%d] + B[i+%d]; }"
          (Random.State.int rand 3) (Random.State.int rand 3) (Random.State.int rand 3)
      in
      let f = Snslp_frontend.Frontend.compile_one src in
      let values =
        Func.fold_instrs
          (fun acc j -> if Instr.has_result j then Instr.value j :: acc else acc)
          [] f
      in
      List.for_all
        (fun a ->
          List.for_all
            (fun b ->
              (* Scores are non-negative, and the look-ahead only adds
                 to the shallow score. *)
              let deep = Snslp_vectorizer.Lookahead.score ~depth:2 a b in
              let shallow = Snslp_vectorizer.Lookahead.shallow a b in
              deep >= 0 && deep >= shallow)
            values)
        values)

(* --- Cost breakdown consistency ---------------------------------------------- *)

let cost_breakdown_sums =
  QCheck.Test.make ~count:100 ~name:"cost breakdown total = nodes + extracts"
    QCheck.(make Gen.(int_range 1 100_000))
    (fun seed ->
      let rand = Random.State.make [| seed |] in
      let off k = Random.State.int rand 3 + k in
      let src =
        Printf.sprintf
          "kernel c(double A[], double B[], double C[], long i) {\n\
          \  A[i+0] = B[i+%d] + C[i+%d];\n\
          \  A[i+1] = B[i+%d] - C[i+%d];\n\
           }"
          (off 0) (off 0) (off 1) (off 1)
      in
      let f = Snslp_frontend.Frontend.compile_one src in
      ignore (Snslp_passes.Fold.run f);
      ignore (Snslp_passes.Simplify.run f);
      ignore (Snslp_passes.Cse.run f);
      let config = Snslp_vectorizer.Config.snslp in
      let lanes_for = Snslp_costmodel.Target.lanes_for Snslp_costmodel.Target.sse in
      match Snslp_vectorizer.Seeds.collect (Func.entry f) ~lanes_for with
      | [ seed_group ] -> (
          match Snslp_vectorizer.Graph.build config f (Func.entry f) seed_group with
          | Some g ->
              let b = Snslp_vectorizer.Cost.of_graph config g in
              let node_sum =
                List.fold_left (fun acc (_, c) -> acc +. c) 0.0 b.Snslp_vectorizer.Cost.per_node
              in
              abs_float
                (b.Snslp_vectorizer.Cost.total
                -. (node_sum +. b.Snslp_vectorizer.Cost.extracts))
              < 1e-9
          | None -> QCheck.assume_fail ())
      | _ -> QCheck.assume_fail ())

(* --- Memoized look-ahead equals the reference -------------------------------- *)

let lookahead_memo_matches_reference =
  QCheck.Test.make ~count:100 ~name:"memoized look-ahead equals the unmemoized reference"
    QCheck.(make Gen.(int_range 1 100_000))
    (fun seed ->
      let rand = Random.State.make [| seed |] in
      (* Random two-lane expression trees over few arrays and small
         offsets; CSE turns the repeated loads into genuine sharing,
         so the scored operand structure is a DAG — the shape where a
         wrong cache key (collision across pairs, depths, or operand
         order) would be observable. *)
      let term () =
        Printf.sprintf "%s[i+%d]"
          [| "A"; "B"; "C" |].(Random.State.int rand 3)
          (Random.State.int rand 3)
      in
      let rec expr n =
        if n = 0 then term ()
        else
          let op = [| " + "; " - "; " * " |].(Random.State.int rand 3) in
          Printf.sprintf "(%s%s%s)" (expr (n - 1)) op (expr (n - 1))
      in
      let depth0 = 1 + Random.State.int rand 3 in
      let src =
        Printf.sprintf
          "kernel k(double O[], double A[], double B[], double C[], long i) {\n\
          \  O[i+0] = %s;\n\
          \  O[i+1] = %s;\n\
           }"
          (expr depth0) (expr depth0)
      in
      let f = Snslp_frontend.Frontend.compile_one src in
      ignore (Snslp_passes.Cse.run f);
      let values =
        Func.fold_instrs
          (fun acc j -> if Instr.has_result j then Instr.value j :: acc else acc)
          [] f
      in
      let values = List.filteri (fun k _ -> k < 20) values in
      (* One cache shared across every query: an entry written for one
         (pair, depth) must never answer another. *)
      let cache = Lookahead.cache_create () in
      List.for_all
        (fun a ->
          List.for_all
            (fun b ->
              List.for_all
                (fun depth -> Lookahead.score ~cache ~depth a b = Lookahead.score ~depth a b)
                [ 0; 1; 2; 3; 4 ])
            values)
        values)

(* --- Use-list consistency through rewrites ----------------------------------- *)

let check_uses (f : Defs.func) =
  match Func.check_use_lists f with
  | Ok () -> true
  | Error e -> QCheck.Test.fail_report e

let use_lists_stay_consistent =
  QCheck.Test.make ~count:150
    ~name:"use-lists stay consistent through replace/erase/vectorization"
    QCheck.(make Gen.(int_range 1 100_000))
    (fun seed ->
      let rand = Random.State.make [| seed |] in
      (* The massage-style workload: two-lane +/- chains over shared
         arrays, so the SN-SLP pipeline run below actually rewrites
         the function (massaging inserts and erases trunk chains). *)
      let nterms = 2 + Random.State.int rand 4 in
      let lane () =
        String.concat ""
          (List.init nterms (fun k ->
               let t =
                 Printf.sprintf "%s[i+%d]"
                   [| "A"; "B"; "C" |].(k mod 3)
                   (Random.State.int rand 3)
               in
               if k = 0 then t else (if Random.State.int rand 3 = 0 then " - " else " + ") ^ t))
      in
      let src =
        Printf.sprintf
          "kernel u(double O[], double A[], double B[], double C[], long i) {\n\
          \  O[i+0] = %s;\n\
          \  O[i+1] = %s;\n\
           }"
          (lane ()) (lane ())
      in
      let f = Snslp_frontend.Frontend.compile_one src in
      check_uses f
      && begin
           (* replace_all_uses: redirect one value to a same-typed
              other; the old def must end up use-free, the new one
              must absorb its uses. *)
           let candidates =
             Func.fold_instrs
               (fun acc j ->
                 if Instr.has_result j && (not (Instr.is_store j)) then j :: acc else acc)
               [] f
           in
           match candidates with
           | a :: rest -> (
               match
                 List.find_opt (fun b -> Ty.equal (Instr.ty a) (Instr.ty b)) rest
               with
               | Some b ->
                   Func.replace_all_uses f ~old_v:(Instr.value a) ~new_v:(Instr.value b);
                   check_uses f
                   && (not (Func.has_uses f (Instr.value a)))
                   &&
                   (* the now-dead def erases cleanly, unlinking
                      itself from its operands' use-lists *)
                   (Func.erase_instr f a;
                    check_uses f)
               | None -> true)
           | [] -> true
         end
      &&
      (* A full SN-SLP run (massage, codegen rewiring, dead-trunk
         erasure) on a fresh copy keeps the invariant. *)
      let g = Snslp_frontend.Frontend.compile_one src in
      let r = Snslp_passes.Pipeline.run ~setting:(Some Config.snslp) g in
      check_uses r.Snslp_passes.Pipeline.func)

(* --- Fingerprint soundness --------------------------------------------------- *)

(* [Config.fingerprint] keys the compile-service cache, so two configs
   with equal fingerprints MUST produce byte-identical optimized IR on
   every function.  The pool pairs fingerprint-equal configs differing
   only in excluded knobs (memoize, verify_each — compile-strategy,
   not semantics) with fingerprint-distinct ones differing in packing
   and mode; the property quantifies over fuzz-generated functions.
   By construction the pool contains both equal- and distinct-
   fingerprint pairs, so the implication is never vacuous. *)
let fingerprint_keys_output =
  QCheck.Test.make ~count:60 ~name:"equal fingerprints imply identical optimized IR"
    QCheck.(make Gen.(int_range 1 100_000))
    (fun seed ->
      let global beam node_budget (c : Config.t) =
        { c with Config.packing = Config.Global { beam; node_budget } }
      in
      let pool =
        [
          { Config.snslp with Config.memoize = Config.On };
          { Config.snslp with Config.memoize = Config.Off };
          { Config.snslp with Config.verify_each = true };
          global Config.default_beam Config.default_node_budget Config.snslp;
          global Config.default_beam Config.default_node_budget
            { Config.snslp with Config.memoize = Config.Off };
          global 2 64 Config.snslp;
          Config.lslp;
        ]
      in
      let outputs =
        List.map
          (fun c ->
            let f = Snslp_fuzzer.Gen.generate ~seed () in
            let r = Snslp_passes.Pipeline.run ~setting:(Some c) f in
            (Config.fingerprint c, Printer.func_to_string r.Snslp_passes.Pipeline.func))
          pool
      in
      List.for_all
        (fun (fp_a, out_a) ->
          List.for_all
            (fun (fp_b, out_b) ->
              (not (String.equal fp_a fp_b)) || String.equal out_a out_b)
            outputs)
        outputs)

let suite =
  [
    ( "properties",
      List.map to_alcotest
        [
          affine_matches_eval;
          apo_parity;
          massage_preserves_semantics;
          ast_roundtrip;
          fold_agrees_with_interp;
          deps_match_brute_force;
          seeds_chunk_invariants;
          widths_are_decreasing_powers;
          lookahead_nonnegative_and_reflexive;
          lookahead_memo_matches_reference;
          cost_breakdown_sums;
          use_lists_stay_consistent;
          fingerprint_keys_output;
        ] );
  ]

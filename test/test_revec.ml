(* The Revec re-widening pass:
   - concat-mask arithmetic (the widening shuffle primitive);
   - rejuvenation: IR vectorized for a narrow target re-packs to the
     wide target's full register width, semantics intact;
   - rounds compose (2-lane sse bundles reach the 8-lane avx512 width
     through two pairings);
   - pipeline integration: the revec stage reports its counters and
     the translation validator signs off on every pass;
   - a 500-seed property: with and without revec, the optimized
     function computes bit-identical memory. *)

open Snslp_ir
open Snslp_interp
open Snslp_vectorizer
open Snslp_costmodel
module Pipeline = Snslp_passes.Pipeline
module Revec = Snslp_passes.Revec
module Dce = Snslp_passes.Dce
module Gen = Snslp_fuzzer.Gen
module Oracle = Snslp_fuzzer.Oracle
module Registry = Snslp_kernels.Registry

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let on_target (tgt : Target.t) revec =
  {
    Config.snslp with
    Config.target = tgt;
    model = Model.for_target tgt;
    revec;
  }

let compile_kernel name =
  match Registry.find name with
  | Some k -> Snslp_frontend.Frontend.compile_one k.Registry.source
  | None -> Alcotest.failf "registry kernel %s missing" name

(* Widest vector type appearing anywhere in the function. *)
let max_lanes (f : Defs.func) =
  Func.fold_instrs (fun acc i -> max acc (Ty.lanes i.Defs.ty)) 1 f

(* --- Mask arithmetic ------------------------------------------------------ *)

let test_concat_mask () =
  check "concat of 2-lane" true (Revec.concat_mask 2 = [| 0; 1; 2; 3 |]);
  check "concat of 4-lane" true (Revec.concat_mask 4 = [| 0; 1; 2; 3; 4; 5; 6; 7 |]);
  List.iter
    (fun l ->
      let m = Revec.concat_mask l in
      check_int (Printf.sprintf "length %d" l) (2 * l) (Array.length m);
      (* The mask is the identity over the concatenation: lane [i] of
         the result reads lane [i mod l] of operand [i / l] — exactly
         the LLVM two-operand shuffle convention for a concat. *)
      Array.iteri
        (fun i x ->
          check_int (Printf.sprintf "l=%d lane %d" l i) i x)
        m)
    [ 2; 4; 8 ]

(* --- Rejuvenation --------------------------------------------------------- *)

(* The Revec paper's scenario: code vectorized for a narrow ISA
   generation, re-widened for a later one without re-running scalar
   SLP.  motiv_leaf_x4 carries 8 adjacent i64 stores, so sse packs
   2-wide; re-vectorizing toward avx512 must reach 8-wide. *)
let rejuvenate ~(narrow : Target.t) ~(wide : Target.t) name =
  let scalar = compile_kernel name in
  let narrow_f =
    (Pipeline.run ~setting:(Some (on_target narrow false)) scalar).Pipeline.func
  in
  let f = Func.clone narrow_f in
  let r = Revec.run ~model:(Model.for_target wide) ~target:wide f in
  ignore (Dce.run f);
  (scalar, narrow_f, f, r)

let test_rejuvenation_widens () =
  let scalar, narrow_f, f, r =
    rejuvenate ~narrow:Target.sse ~wide:Target.avx512 "motiv_leaf_x4"
  in
  check "sse compile is 2-wide" true (max_lanes narrow_f = 2);
  check "pairs committed" true (r.Revec.pairs > 0);
  check "wide instrs emitted" true (r.Revec.widened > r.Revec.pairs);
  (* 2 -> 4 -> 8 takes two productive rounds. *)
  check "rounds compose" true (r.Revec.rounds >= 2);
  check_int "reaches full avx512 width" 8 (max_lanes f);
  (match Verifier.check f with
  | Ok () -> ()
  | Error report -> Alcotest.failf "re-widened IR invalid: %s" report);
  (* Semantics: the re-widened function must compute exactly what the
     scalar original computes (widening is elementwise — no float
     reassociation — so the comparison is bit-exact). *)
  check "matches the scalar original" true
    (Memory.equal (Oracle.run_memory scalar) (Oracle.run_memory f));
  check "matches the narrow compile" true
    (Memory.equal (Oracle.run_memory narrow_f) (Oracle.run_memory f))

(* One hop only: sse 2-lane bundles toward avx2 stop at 4 lanes. *)
let test_rejuvenation_stops_at_register_width () =
  let _, _, f, r = rejuvenate ~narrow:Target.sse ~wide:Target.avx2 "motiv_leaf_x4" in
  check "pairs committed" true (r.Revec.pairs > 0);
  check_int "stops at the avx2 width" 4 (max_lanes f)

(* Re-widening toward the target the code was compiled for is a
   no-op: the bundles already fill the register. *)
let test_rejuvenation_same_target_noop () =
  let _, narrow_f, f, r = rejuvenate ~narrow:Target.sse ~wide:Target.sse "motiv_leaf_x4" in
  check_int "no pairs" 0 r.Revec.pairs;
  check_int "no wide instrs" 0 r.Revec.widened;
  check "IR untouched" true
    (String.equal (Printer.func_to_string narrow_f) (Printer.func_to_string f))

(* --- Pipeline integration ------------------------------------------------- *)

(* The narrow IR fed back through the full pipeline at the wide
   target: scalar SLP finds no seeds (the stores are already vector),
   revec does the re-widening, DCE sweeps the strands, and the
   translation validator checks every step.  The stats counters must
   surface the revec activity. *)
let test_pipeline_rejuvenation_validates () =
  let scalar = compile_kernel "motiv_leaf_x4" in
  let narrow_f =
    (Pipeline.run ~setting:(Some (on_target Target.sse false)) scalar).Pipeline.func
  in
  let result =
    Pipeline.run ~setting:(Some (on_target Target.avx512 true)) ~validate:true narrow_f
  in
  let rep =
    match result.Pipeline.vect_report with
    | Some rep -> rep
    | None -> Alcotest.fail "no vectorizer report"
  in
  check "stats count pairs" true (rep.Vectorize.stats.Stats.revec_pairs > 0);
  check "stats count widened" true
    (rep.Vectorize.stats.Stats.revec_widened > rep.Vectorize.stats.Stats.revec_pairs);
  check_int "output is 8-wide" 8 (max_lanes result.Pipeline.func);
  (match result.Pipeline.validation with
  | None -> Alcotest.fail "no validation record"
  | Some v ->
      List.iter
        (fun (pass, verdict) ->
          match verdict with
          | Snslp_lint.Validate.Mismatch { where; detail } ->
              Alcotest.failf "pass %s: mismatch @%s: %s" pass where detail
          | Snslp_lint.Validate.Valid | Snslp_lint.Validate.Unknown _ -> ())
        v.Pipeline.pass_verdicts;
      (match v.Pipeline.end_verdict with
      | Snslp_lint.Validate.Mismatch { where; detail } ->
          Alcotest.failf "end-to-end mismatch @%s: %s" where detail
      | Snslp_lint.Validate.Valid | Snslp_lint.Validate.Unknown _ -> ());
      List.iter (fun msg -> Alcotest.failf "graph invariant: %s" msg) v.Pipeline.graph_findings);
  check "memory matches the scalar original" true
    (Memory.equal (Oracle.run_memory scalar) (Oracle.run_memory result.Pipeline.func))

(* Revec off: the counters stay zero. *)
let test_counters_zero_without_revec () =
  let scalar = compile_kernel "motiv_leaf_x4" in
  match
    (Pipeline.run ~setting:(Some (on_target Target.avx512 false)) scalar).Pipeline.vect_report
  with
  | Some rep ->
      check_int "no pairs" 0 rep.Vectorize.stats.Stats.revec_pairs;
      check_int "no widened" 0 rep.Vectorize.stats.Stats.revec_widened
  | None -> Alcotest.fail "no vectorizer report"

(* --- Property: revec preserves semantics ---------------------------------- *)

(* Per random seed, the avx512 pipeline with and without revec must
   compute bit-identical memory.  Revec widens elementwise (lanes
   keep their operations, concatenation never reorders arithmetic),
   so no float tolerance is needed — [Memory.equal] is exact. *)
let prop_revec_preserves =
  QCheck.Test.make ~count:500 ~name:"revec preserves semantics (500 random seeds)"
    QCheck.(make Gen.(int_bound 10_000_000))
    (fun seed ->
      let func = Snslp_fuzzer.Gen.generate ~seed () in
      let opt revec =
        (Pipeline.run ~setting:(Some (on_target Target.avx512 revec)) func).Pipeline.func
      in
      let with_revec = opt true in
      (match Verifier.check with_revec with
      | Ok () -> ()
      | Error report ->
          QCheck.Test.fail_reportf "seed %d: revec output invalid: %s" seed report);
      Memory.equal (Oracle.run_memory (opt false)) (Oracle.run_memory with_revec))

let suite =
  [
    ( "revec",
      [
        Alcotest.test_case "concat mask arithmetic" `Quick test_concat_mask;
        Alcotest.test_case "rejuvenation sse -> avx512" `Quick test_rejuvenation_widens;
        Alcotest.test_case "rejuvenation stops at register width" `Quick
          test_rejuvenation_stops_at_register_width;
        Alcotest.test_case "same-target rejuvenation is a no-op" `Quick
          test_rejuvenation_same_target_noop;
        Alcotest.test_case "pipeline rejuvenation validates" `Quick
          test_pipeline_rejuvenation_validates;
        Alcotest.test_case "counters zero without revec" `Quick
          test_counters_zero_without_revec;
        QCheck_alcotest.to_alcotest prop_revec_preserves;
      ] );
  ]

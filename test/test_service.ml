(* The compile service: semantic cache keys, the LRU cache, the wire
   protocol, and the server loop.

   The load-bearing properties:
   - semantically equivalent but structurally distinct sources share
     one cache key (reassociation; mul/div inverse cancellation), and
     the service answers the variant from the original's entry as a
     *semantic* hit;
   - functions outside the validated fragment fall back to structural
     keys and never falsely share;
   - a cache answer is byte-identical to the fresh compile of the
     same source;
   - eviction respects the entry budget, preferring the least
     recently used entry. *)

open Snslp_ir
module Semhash = Snslp_lint.Semhash
module Cache = Snslp_service.Cache
module Protocol = Snslp_service.Protocol
module Server = Snslp_service.Server

let check = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0
let check_int = Alcotest.(check int)

let compile_one = Snslp_frontend.Frontend.compile_one

let fingerprint = "test-fp"
let key src = Semhash.cache_key ~fingerprint (compile_one src)

(* --- Semantic keys -------------------------------------------------------- *)

let reassoc_a =
  {|
kernel f(long A[], long B[], long C[], long D[], long i) {
  A[i+0] = B[i+0] - C[i+0] + D[i+0];
  A[i+1] = D[i+1] - C[i+1] + B[i+1];
}
|}

let reassoc_b =
  {|
kernel g(long A[], long B[], long C[], long D[], long i) {
  A[i+0] = D[i+0] + B[i+0] - C[i+0];
  A[i+1] = B[i+1] - C[i+1] + D[i+1];
}
|}

let test_semantic_key_reassociation () =
  check "reassociated chains share a key" true (String.equal (key reassoc_a) (key reassoc_b));
  check "but are structurally distinct" false
    (String.equal
       (Semhash.structural_digest (compile_one reassoc_a))
       (Semhash.structural_digest (compile_one reassoc_b)))

let test_semantic_key_cancellation () =
  let a =
    {|
kernel f(float A[], float B[], float C[], long i) {
  A[i+0] = B[i+0] * C[i+0] / C[i+0];
  A[i+1] = B[i+1] * C[i+1] / C[i+1];
}
|}
  in
  let b =
    {|
kernel f(float A[], float B[], float C[], long i) {
  A[i+0] = B[i+0];
  A[i+1] = B[i+1];
}
|}
  in
  check "(a*b)/b and a share a key" true (String.equal (key a) (key b))

let test_different_semantics_different_keys () =
  let a = "kernel f(long A[], long B[], long i) { A[i] = B[i] + 1; }" in
  let b = "kernel f(long A[], long B[], long i) { A[i] = B[i] + 2; }" in
  check "different stored values, different keys" false (String.equal (key a) (key b))

let test_signature_part_of_key () =
  (* Same stored behaviour, different argument types: must not share
     (the cached IR's header would not match the request's). *)
  let a = "kernel f(long A[], long B[], long i) { A[i] = B[i]; }" in
  let b = "kernel f(long A[], long B[], long i, long unused) { A[i] = B[i]; }" in
  check "signatures differ, keys differ" false (String.equal (key a) (key b))

let test_name_irrelevant_to_key () =
  let a = "kernel f(long A[], long B[], long i) { A[i] = B[i] + 1; }" in
  let b = "kernel other_name(long A[], long B[], long i) { A[i] = B[i] + 1; }" in
  check "kernel name does not reach the key" true (String.equal (key a) (key b));
  check "nor the structural digest" true
    (String.equal
       (Semhash.structural_digest (compile_one a))
       (Semhash.structural_digest (compile_one b)))

(* --- Loop kernels in the semantic key space -------------------------------- *)

(* Before the inductive validator, every loop-shaped function fell to
   the [str:] fallback and only byte-identical resubmissions hit.
   Counted loops now capture semantically: reassociated loop bodies
   share one [sem:] entry even with a symbolic trip count. *)

let loop_reassoc_a =
  {|
kernel f(double A[], double B[], double C[], double D[], long n) {
  for (long k = 0; k < n; k = k + 1) { A[k] = B[k] - C[k] + D[k]; }
}
|}

let loop_reassoc_b =
  {|
kernel g(double A[], double B[], double C[], double D[], long n) {
  for (long k = 0; k < n; k = k + 1) { A[k] = D[k] + B[k] - C[k]; }
}
|}

let test_semantic_key_loop_reassociation () =
  (match Semhash.of_func (compile_one loop_reassoc_a) with
  | Semhash.Semantic _ -> ()
  | Semhash.Structural _ ->
      Alcotest.fail "a counted loop fell to the structural fallback");
  check "reassociated loop bodies share a key" true
    (String.equal (key loop_reassoc_a) (key loop_reassoc_b));
  check "but are structurally distinct" false
    (String.equal
       (Semhash.structural_digest (compile_one loop_reassoc_a))
       (Semhash.structural_digest (compile_one loop_reassoc_b)))

(* Every loop-form registry kernel captures semantically and shares
   its key with the straight-line twin — the same computation, loop
   peeled by hand. *)
let test_semantic_key_registry_loop_twins () =
  List.iter
    (fun ((lk : Snslp_kernels.Registry.t), (tw : Snslp_kernels.Registry.t)) ->
      let fl = compile_one lk.Snslp_kernels.Registry.source in
      let ft = compile_one tw.Snslp_kernels.Registry.source in
      (match Semhash.of_func fl with
      | Semhash.Semantic _ -> ()
      | Semhash.Structural _ ->
          Alcotest.failf "%s: loop form fell to the structural fallback"
            lk.Snslp_kernels.Registry.name);
      check
        (lk.Snslp_kernels.Registry.name ^ " shares with " ^ tw.Snslp_kernels.Registry.name)
        true
        (String.equal
           (Semhash.cache_key ~fingerprint fl)
           (Semhash.cache_key ~fingerprint ft)))
    Snslp_kernels.Registry.loop_pairs

(* Disjointness guard: semantically different symbolic-trip loops get
   different semantic keys — the summary carries the full parametric
   store footprint. *)
let test_symbolic_loops_never_falsely_share () =
  let a =
    "kernel f(double A[], double B[], long n) { for (long k = 0; k < n; k = k + 1) { A[k] = B[k] + 1.0; } }"
  in
  let b =
    "kernel f(double A[], double B[], long n) { for (long k = 0; k < n; k = k + 1) { A[k] = B[k] + 2.0; } }"
  in
  let bounds =
    "kernel f(double A[], double B[], long n) { for (long k = 1; k < n; k = k + 1) { A[k] = B[k] + 1.0; } }"
  in
  check "different loop bodies, different keys" false (String.equal (key a) (key b));
  check "different loop bounds, different keys" false (String.equal (key a) (key bounds))

(* Cyclic control flow is outside the validator's fragment: such
   functions must fall back to structural keys and never share unless
   byte-identical. *)
let loop_ir body =
  Printf.sprintf "func @f(i64 %%i) {\nentry:\n  br %%loop\nloop:\n%s  br %%loop\n}\n" body

let test_unknown_never_falsely_shares () =
  let a = Ir_parser.parse (loop_ir "") in
  let b = Ir_parser.parse (loop_ir "  %0 = add i64 %i, %i\n") in
  (match Semhash.of_func a with
  | Semhash.Structural _ -> ()
  | Semhash.Semantic _ -> Alcotest.fail "a cyclic function captured semantically");
  check "distinct unknown-fragment bodies get distinct keys" false
    (String.equal
       (Semhash.cache_key ~fingerprint a)
       (Semhash.cache_key ~fingerprint b));
  (* The same unknown body resubmitted is still recognised. *)
  let a' = Ir_parser.parse (loop_ir "") in
  check "identical unknown bodies share" true
    (String.equal
       (Semhash.cache_key ~fingerprint a)
       (Semhash.cache_key ~fingerprint a'))

let test_semantic_and_structural_spaces_disjoint () =
  (* A structural digest can never collide with a semantic one even if
     the hex strings matched: the rendering is prefixed. *)
  check "prefixes differ" false
    (String.equal
       (Semhash.key_to_string (Semhash.Semantic "deadbeef"))
       (Semhash.key_to_string (Semhash.Structural "deadbeef")))

(* --- The LRU cache -------------------------------------------------------- *)

let test_cache_outcomes () =
  let c = Cache.create ~capacity:4 () in
  check "cold lookup misses" true (Cache.find c ~key:"k" ~structural:"s1" = None);
  Cache.add c ~key:"k" ~structural:"s1" 42;
  (match Cache.find c ~key:"k" ~structural:"s1" with
  | Some (42, Cache.Hit_textual) -> ()
  | _ -> Alcotest.fail "same structure should be a textual hit");
  (match Cache.find c ~key:"k" ~structural:"s2" with
  | Some (42, Cache.Hit_semantic) -> ()
  | _ -> Alcotest.fail "different structure should be a semantic hit");
  let n = Cache.counters c in
  check_int "misses" 1 n.Cache.misses;
  check_int "textual" 1 n.Cache.hits_textual;
  check_int "semantic" 1 n.Cache.hits_semantic;
  Alcotest.(check (float 1e-9)) "hit rate" (2.0 /. 3.0) (Cache.hit_rate n)

let test_cache_eviction_bound () =
  let c = Cache.create ~capacity:2 () in
  Cache.add c ~key:"a" ~structural:"s" 1;
  Cache.add c ~key:"b" ~structural:"s" 2;
  (* Touch [a] so [b] is the least recently used. *)
  ignore (Cache.find c ~key:"a" ~structural:"s");
  Cache.add c ~key:"c" ~structural:"s" 3;
  let n = Cache.counters c in
  check_int "bounded" 2 n.Cache.entries;
  check_int "one eviction" 1 n.Cache.evictions;
  check "recently-used survives" true (Cache.mem c "a");
  check "LRU evicted" false (Cache.mem c "b");
  check "new entry present" true (Cache.mem c "c")

let test_cache_first_value_wins () =
  let c = Cache.create ~capacity:4 () in
  Cache.add c ~key:"k" ~structural:"s" 1;
  Cache.add c ~key:"k" ~structural:"s" 2;
  (match Cache.find c ~key:"k" ~structural:"s" with
  | Some (1, _) -> ()
  | _ -> Alcotest.fail "re-insertion must not replace (compiles are deterministic)");
  check_int "no duplicate entry" 1 (Cache.counters c).Cache.entries

(* --- Protocol ------------------------------------------------------------- *)

let feed lines =
  let q = Queue.create () in
  List.iter (fun l -> Queue.add l q) lines;
  fun () -> Queue.take_opt q

let test_protocol_request_roundtrip () =
  let reader = feed [ "compile sn-slp 2"; "kernel f() {"; "}"; "batch 3"; "stats"; "quit" ] in
  (match Protocol.read_request reader with
  | Some (Ok (Protocol.Compile { mode; source })) ->
      check_str "mode" "sn-slp" mode;
      check_str "payload joined" "kernel f() {\n}" source
  | _ -> Alcotest.fail "compile frame");
  (match Protocol.read_request reader with
  | Some (Ok (Protocol.Batch 3)) -> ()
  | _ -> Alcotest.fail "batch frame");
  (match Protocol.read_request reader with
  | Some (Ok Protocol.Stats) -> ()
  | _ -> Alcotest.fail "stats frame");
  (match Protocol.read_request reader with
  | Some (Ok Protocol.Quit) -> ()
  | _ -> Alcotest.fail "quit frame");
  check "eof" true (Protocol.read_request reader = None)

let test_protocol_malformed () =
  let bad lines =
    match Protocol.read_request (feed lines) with
    | Some (Error _) -> true
    | _ -> false
  in
  check "unknown verb" true (bad [ "frobnicate" ]);
  check "bad count" true (bad [ "compile sn-slp x" ]);
  check "eof inside payload" true (bad [ "compile sn-slp 3"; "only one line" ]);
  check "bad batch size" true (bad [ "batch 0" ])

let test_protocol_response_roundtrip () =
  let out = ref [] in
  let writer l = out := l :: !out in
  Protocol.write_response writer
    (Protocol.Compiled { statuses = [ "miss"; "hit-textual" ]; ir = "line1\nline2" });
  Protocol.write_response writer (Protocol.Stats_reply [ ("served", "3") ]);
  Protocol.write_response writer (Protocol.Err "multi\nline message");
  let reader = feed (List.rev !out) in
  (match Protocol.read_response reader with
  | Some (Ok (Protocol.Compiled { statuses; ir })) ->
      check "statuses" true (statuses = [ "miss"; "hit-textual" ]);
      check_str "payload" "line1\nline2" ir
  | _ -> Alcotest.fail "compiled response");
  (match Protocol.read_response reader with
  | Some (Ok (Protocol.Stats_reply [ ("served", "3") ])) -> ()
  | _ -> Alcotest.fail "stats response");
  match Protocol.read_response reader with
  | Some (Ok (Protocol.Err msg)) -> check "newlines collapsed" true (msg = "multi line message")
  | _ -> Alcotest.fail "err response"

(* --- The server ----------------------------------------------------------- *)

let converse server lines =
  let out = ref [] in
  Server.serve server ~reader:(feed lines) ~writer:(fun l -> out := l :: !out);
  let q = Queue.create () in
  List.iter (fun l -> Queue.add l q) (List.rev !out);
  let rec go acc =
    match Protocol.read_response (fun () -> Queue.take_opt q) with
    | None -> List.rev acc
    | Some (Ok r) -> go (r :: acc)
    | Some (Error e) -> Alcotest.fail ("malformed response: " ^ e)
  in
  go []

let compile_frame mode src =
  let lines = String.split_on_char '\n' (String.trim src) in
  Printf.sprintf "compile %s %d" mode (List.length lines) :: lines

let statuses_of = function
  | Protocol.Compiled { statuses; _ } -> String.concat "," statuses
  | Protocol.Err e -> "err:" ^ e
  | Protocol.Stats_reply _ -> "stats"

let ir_of = function
  | Protocol.Compiled { ir; _ } -> ir
  | _ -> Alcotest.fail "expected a compiled response"

let test_server_cold_then_warm () =
  let server = Server.create () in
  let lines = compile_frame "sn-slp" reassoc_a @ compile_frame "sn-slp" reassoc_a @ [ "quit" ] in
  match converse server lines with
  | [ first; second ] ->
      check_str "cold misses" "miss" (statuses_of first);
      check_str "warm hits" "hit-textual" (statuses_of second);
      check_str "cache answer byte-identical to fresh compile" (ir_of first) (ir_of second);
      (* And identical to what a fresh server compiles. *)
      let fresh = converse (Server.create ()) (compile_frame "sn-slp" reassoc_a @ [ "quit" ]) in
      check_str "identical across servers" (ir_of first) (ir_of (List.hd fresh))
  | rs -> Alcotest.fail (Printf.sprintf "expected 2 responses, got %d" (List.length rs))

let test_server_semantic_hit_renames () =
  let server = Server.create () in
  let lines = compile_frame "sn-slp" reassoc_a @ compile_frame "sn-slp" reassoc_b @ [ "quit" ] in
  match converse server lines with
  | [ first; second ] ->
      check_str "variant answered semantically" "hit-semantic" (statuses_of second);
      (* The cached entry was compiled as @f; the answer must carry
         the requester's name. *)
      check "renamed to the requester" true
        (String.length (ir_of second) > 7
        && String.sub (ir_of second) 0 7 = "func @g");
      check "origin kept its own name" true (String.sub (ir_of first) 0 7 = "func @f")
  | _ -> Alcotest.fail "expected 2 responses"

let test_server_loop_semantic_hit () =
  (* The PR-8 regression: a reassociated *loop* kernel used to miss to
     the structural fallback; with inductive capture the variant is
     answered from the original's entry as a semantic hit, renamed to
     the requester. *)
  let server = Server.create () in
  let lines =
    compile_frame "sn-slp" loop_reassoc_a @ compile_frame "sn-slp" loop_reassoc_b @ [ "quit" ]
  in
  (match converse server lines with
  | [ first; second ] ->
      check_str "loop original compiles" "miss" (statuses_of first);
      check_str "reassociated loop variant hits semantically" "hit-semantic"
        (statuses_of second);
      check "renamed to the requester" true
        (String.length (ir_of second) > 7 && String.sub (ir_of second) 0 7 = "func @g")
  | rs -> Alcotest.fail (Printf.sprintf "expected 2 responses, got %d" (List.length rs)));
  (* And the same at the cache layer for a loop/straight-line twin
     pair from the registry. *)
  let lk, tw = List.hd Snslp_kernels.Registry.loop_pairs in
  let c = Cache.create ~capacity:8 () in
  let k f = Semhash.cache_key ~fingerprint f in
  let fl = compile_one lk.Snslp_kernels.Registry.source in
  let ft = compile_one tw.Snslp_kernels.Registry.source in
  Cache.add c ~key:(k fl) ~structural:(Semhash.structural_digest fl) 1;
  match Cache.find c ~key:(k ft) ~structural:(Semhash.structural_digest ft) with
  | Some (1, Cache.Hit_semantic) -> ()
  | _ -> Alcotest.fail "loop twin should hit the loop form's entry semantically"

let test_server_modes_do_not_share () =
  (* The config fingerprint is part of the key: sn-slp's entry must
     not answer an slp request. *)
  let server = Server.create () in
  let lines = compile_frame "sn-slp" reassoc_a @ compile_frame "slp" reassoc_a @ [ "quit" ] in
  match converse server lines with
  | [ _; second ] -> check_str "other mode misses" "miss" (statuses_of second)
  | _ -> Alcotest.fail "expected 2 responses"

let test_server_batch_and_stats () =
  let server = Server.create () in
  let lines =
    [ "batch 2" ]
    @ compile_frame "sn-slp" reassoc_a
    @ compile_frame "sn-slp" reassoc_b
    @ [ "stats"; "quit" ]
  in
  match converse server lines with
  | [ first; second; Protocol.Stats_reply kvs ] ->
      check_str "first of batch compiles" "miss" (statuses_of first);
      (* Same semantic key within one batch: deduplicated, answered
         from the first compile. *)
      check_str "second deduplicates" "miss" (statuses_of second);
      check_str "one compile served both" (ir_of first)
        (String.concat "\n"
           (List.map
              (fun l ->
                if String.length l > 7 && String.sub l 0 7 = "func @g" then
                  "func @f" ^ String.sub l 7 (String.length l - 7)
                else l)
              (String.split_on_char '\n' (ir_of second))));
      check_str "served" "2" (List.assoc "served" kvs)
  | rs -> Alcotest.fail (Printf.sprintf "expected 3 responses, got %d" (List.length rs))

let test_server_packing_modes () =
  (* "+global" is part of the config fingerprint: a greedy-packed
     entry must not answer a global-packed request, and "sn-slp" and
     "sn-slp+greedy" are the same config, so they DO share.  The
     stats reply carries the pack search counters, which only global
     compiles advance.  lbm_stream is one of the kernels where the
     two packings produce different code, so sharing across them
     would be a miscompile, not just a stale counter. *)
  let server = Server.create () in
  let src = (Option.get (Snslp_kernels.Registry.find "lbm_stream")).Snslp_kernels.Registry.source in
  let lines =
    compile_frame "sn-slp" src
    @ compile_frame "sn-slp+global" src
    @ compile_frame "sn-slp+greedy" src
    @ compile_frame "sn-slp+global:8:2048" src
    @ [ "stats"; "quit" ]
  in
  match converse server lines with
  | [ greedy; glob; greedy_alias; glob_beam8; Protocol.Stats_reply kvs ] ->
      check_str "global misses after greedy" "miss" (statuses_of glob);
      check_str "+greedy shares the plain entry" "hit-textual" (statuses_of greedy_alias);
      check_str "a different beam is a different config" "miss" (statuses_of glob_beam8);
      check "global compiled different code" true
        (not (String.equal (ir_of greedy) (ir_of glob)));
      check "pack candidates counted" true
        (int_of_string (List.assoc "pack_candidates" kvs) > 0);
      check "plans replayed" true (int_of_string (List.assoc "pack_plans" kvs) > 0)
  | rs -> Alcotest.fail (Printf.sprintf "expected 5 responses, got %d" (List.length rs))

let test_server_unroll_modes_do_not_share () =
  (* "/ur" is part of the config fingerprint: an auto-unrolled entry
     must never answer a no-unroll request — on a loopy kernel the two
     compile to genuinely different code (straight line vs. a live
     back-edge), so sharing would be a miscompile.  "sn-slp" and
     "sn-slp/urauto" spell the same config and DO share.  The stats
     reply carries the loop counters that only the unrolling compiles
     advance. *)
  let server = Server.create () in
  let src =
    (Option.get (Snslp_kernels.Registry.find "milc_su3_loop"))
      .Snslp_kernels.Registry.source
  in
  let lines =
    compile_frame "sn-slp" src
    @ compile_frame "sn-slp/urnone" src
    @ compile_frame "sn-slp/urauto" src
    @ compile_frame "sn-slp/ur2" src
    @ compile_frame "sn-slp/urnone" src
    @ [ "stats"; "quit" ]
  in
  match converse server lines with
  | [ auto; off; auto_alias; by2; off_again; Protocol.Stats_reply kvs ] ->
      check_str "auto compiles" "miss" (statuses_of auto);
      check_str "no-unroll misses after auto" "miss" (statuses_of off);
      check_str "/urauto shares the plain entry" "hit-textual" (statuses_of auto_alias);
      check_str "a factor is a different config" "miss" (statuses_of by2);
      check_str "no-unroll warm within its own config" "hit-textual"
        (statuses_of off_again);
      check "unrolled code differs from the kept loop" true
        (not (String.equal (ir_of auto) (ir_of off)));
      check "loops found counted" true
        (int_of_string (List.assoc "loops_found" kvs) > 0);
      check "full unrolls counted" true
        (int_of_string (List.assoc "loops_unrolled_full" kvs) > 0)
  | rs -> Alcotest.fail (Printf.sprintf "expected 6 responses, got %d" (List.length rs))

let test_server_targets_do_not_share () =
  (* "@TARGET" is part of the config fingerprint: IR vectorized for
     one register width must never answer a request for another —
     motiv_leaf_x4 compiles to 2-wide bundles at sse and 8-wide at
     avx512, so sharing across targets would hand out wrong-width
     code.  "@TARGET" also selects the target's machine model, so
     "sn-slp@sse" (x86 model) deliberately does not alias bare
     "sn-slp" (paper model).  The stats reply carries the revec
     counters. *)
  let server = Server.create () in
  let src =
    (Option.get (Snslp_kernels.Registry.find "motiv_leaf_x4"))
      .Snslp_kernels.Registry.source
  in
  let lines =
    compile_frame "sn-slp@sse" src
    @ compile_frame "sn-slp@avx512" src
    @ compile_frame "sn-slp@avx512+revec" src
    @ compile_frame "sn-slp@sse" src
    @ compile_frame "sn-slp@neon" src
    @ [ "stats"; "quit" ]
  in
  match converse server lines with
  | [ sse; avx512; revec; sse_again; neon; Protocol.Stats_reply kvs ] ->
      check_str "sse compiles" "miss" (statuses_of sse);
      check_str "avx512 misses after sse" "miss" (statuses_of avx512);
      check_str "revec is a different config" "miss" (statuses_of revec);
      check_str "sse warm within its own config" "hit-textual" (statuses_of sse_again);
      check_str "neon misses" "miss" (statuses_of neon);
      check "widths compile different code" true
        (not (String.equal (ir_of sse) (ir_of avx512)));
      check "revec counters surfaced" true
        (int_of_string (List.assoc "revec_pairs" kvs) >= 0
        && int_of_string (List.assoc "revec_widened" kvs) >= 0)
  | rs -> Alcotest.fail (Printf.sprintf "expected 6 responses, got %d" (List.length rs))

let test_server_bad_target_mode () =
  let server = Server.create () in
  let lines =
    compile_frame "sn-slp@mmx" "kernel f(double a[], long i) { a[i] = a[i]; }"
    @ compile_frame "o3@sse" "kernel f(double a[], long i) { a[i] = a[i]; }"
    @ [ "quit" ]
  in
  match converse server lines with
  | [ Protocol.Err e; Protocol.Err e' ] ->
      check "names the target" true (contains e "target");
      check "o3 takes no target" true (contains e' "target")
  | _ -> Alcotest.fail "expected two error responses"

let test_server_bad_unroll_mode () =
  let server = Server.create () in
  let lines = compile_frame "sn-slp/urx" "kernel f(double a[], long i) { a[i] = a[i]; }" @ [ "quit" ] in
  match converse server lines with
  | [ Protocol.Err e ] -> check "names the policy" true (contains e "unroll")
  | _ -> Alcotest.fail "expected an error response"

let test_server_bad_requests () =
  let server = Server.create () in
  let lines =
    [ "compile nosuchmode 1"; "kernel f() {}" ]
    @ compile_frame "sn-slp" "kernel f(long A[]) { A[0] = ; }"
    @ [ "frobnicate"; "quit" ]
  in
  match converse server lines with
  | [ Protocol.Err _; Protocol.Err _; Protocol.Err _ ] -> ()
  | rs ->
      Alcotest.fail
        (Printf.sprintf "expected 3 errors, got %d responses: %s" (List.length rs)
           (String.concat "; " (List.map statuses_of rs)))

let test_server_eviction_end_to_end () =
  (* Capacity 1: the second distinct kernel evicts the first, so a
     third request for the first source recompiles. *)
  let server = Server.create ~capacity:1 () in
  let other = "kernel h(long A[], long B[], long i) { A[i] = B[i] + 7; }" in
  let lines =
    compile_frame "sn-slp" reassoc_a
    @ compile_frame "sn-slp" other
    @ compile_frame "sn-slp" reassoc_a
    @ [ "quit" ]
  in
  match converse server lines with
  | [ _; _; third ] -> check_str "evicted entry recompiles" "miss" (statuses_of third)
  | _ -> Alcotest.fail "expected 3 responses"

let suite =
  [
    ( "service",
      [
        Alcotest.test_case "semantic key: reassociation" `Quick test_semantic_key_reassociation;
        Alcotest.test_case "semantic key: (a*b)/b = a" `Quick test_semantic_key_cancellation;
        Alcotest.test_case "different semantics differ" `Quick test_different_semantics_different_keys;
        Alcotest.test_case "signature in key" `Quick test_signature_part_of_key;
        Alcotest.test_case "name not in key" `Quick test_name_irrelevant_to_key;
        Alcotest.test_case "semantic key: loop reassociation" `Quick
          test_semantic_key_loop_reassociation;
        Alcotest.test_case "semantic key: registry loop twins" `Quick
          test_semantic_key_registry_loop_twins;
        Alcotest.test_case "symbolic loops never falsely share" `Quick
          test_symbolic_loops_never_falsely_share;
        Alcotest.test_case "unknown fragment never shares" `Quick test_unknown_never_falsely_shares;
        Alcotest.test_case "key spaces disjoint" `Quick test_semantic_and_structural_spaces_disjoint;
        Alcotest.test_case "cache outcomes and counters" `Quick test_cache_outcomes;
        Alcotest.test_case "cache eviction bound (LRU)" `Quick test_cache_eviction_bound;
        Alcotest.test_case "cache first value wins" `Quick test_cache_first_value_wins;
        Alcotest.test_case "protocol request roundtrip" `Quick test_protocol_request_roundtrip;
        Alcotest.test_case "protocol malformed frames" `Quick test_protocol_malformed;
        Alcotest.test_case "protocol response roundtrip" `Quick test_protocol_response_roundtrip;
        Alcotest.test_case "server cold/warm bit-identical" `Quick test_server_cold_then_warm;
        Alcotest.test_case "server semantic hit renames" `Quick test_server_semantic_hit_renames;
        Alcotest.test_case "server loop semantic hit" `Quick test_server_loop_semantic_hit;
        Alcotest.test_case "server modes do not share" `Quick test_server_modes_do_not_share;
        Alcotest.test_case "server batch + dedup + stats" `Quick test_server_batch_and_stats;
        Alcotest.test_case "server packing modes and counters" `Quick
          test_server_packing_modes;
        Alcotest.test_case "server unroll modes do not share" `Quick
          test_server_unroll_modes_do_not_share;
        Alcotest.test_case "server targets do not share" `Quick
          test_server_targets_do_not_share;
        Alcotest.test_case "server bad target mode" `Quick test_server_bad_target_mode;
        Alcotest.test_case "server bad unroll mode" `Quick test_server_bad_unroll_mode;
        Alcotest.test_case "server bad requests" `Quick test_server_bad_requests;
        Alcotest.test_case "server eviction end to end" `Quick test_server_eviction_end_to_end;
      ] );
  ]

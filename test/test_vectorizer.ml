(* Vectorizer tests: seeds, look-ahead scoring, chain discovery and
   APOs, Super-Node legality/reordering, graph shapes, the paper's
   exact cost numbers, and code generation. *)

open Snslp_ir
open Snslp_vectorizer
open Snslp_passes

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_f = Alcotest.(check (float 1e-9))

let compile src = Snslp_frontend.Frontend.compile_one src

(* A float binop whose first operand is itself a binop — the root of a
   chain, as opposed to index arithmetic or the deepest operator. *)
let find_chain_root ?(kind : Defs.binop option) f =
  List.find
    (fun (j : Defs.instr) ->
      Instr.is_binop j
      && Ty.is_float j.Defs.ty
      && (match kind with Some k -> Instr.binop_kind j = Some k | None -> true)
      && (match j.Defs.ops.(0) with Defs.Instr k -> Instr.is_binop k | _ -> false))
    (Block.instrs (Func.entry f))

(* The frontend output canonicalised by the scalar pre-passes, the
   state SLP actually sees. *)
let canonical src =
  let result = Pipeline.run ~setting:None (compile src) in
  result.Pipeline.func

let entry_of f = Func.entry f

(* --- Seeds --------------------------------------------------------------- *)

let lanes_for = Snslp_costmodel.Target.lanes_for Snslp_costmodel.Target.sse

let test_seeds_adjacent_stores () =
  let f =
    canonical
      {|
kernel s(double A[], double B[], long i) {
  A[i+0] = 1.0;
  A[i+1] = 2.0;
  B[i+0] = 3.0;
  B[i+7] = 4.0;
}
|}
  in
  let seeds = Seeds.collect (entry_of f) ~lanes_for in
  check_int "one full-width group" 1 (List.length seeds);
  check_int "group width" 2 (List.length (List.hd seeds))

let test_seeds_runs_are_chunked () =
  let f =
    canonical
      {|
kernel s(double A[], long i) {
  A[i+0] = 1.0;
  A[i+1] = 2.0;
  A[i+2] = 3.0;
  A[i+3] = 4.0;
  A[i+4] = 5.0;
}
|}
  in
  let seeds = Seeds.collect (entry_of f) ~lanes_for in
  (* Five consecutive f64 stores, width 2: two full groups. *)
  check_int "two groups" 2 (List.length seeds)

let test_seeds_respect_element_width () =
  let f =
    canonical
      {|
kernel s(float A[], long i) {
  A[i+0] = 1.0;
  A[i+1] = 2.0;
}
|}
  in
  (* f32 on SSE needs 4 lanes; a run of 2 yields no seed. *)
  check_int "no seed" 0 (List.length (Seeds.collect (entry_of f) ~lanes_for))

let test_seeds_gap_splits_run () =
  let f =
    canonical
      {|
kernel s(double A[], long i) {
  A[i+0] = 1.0;
  A[i+2] = 2.0;
  A[i+3] = 3.0;
}
|}
  in
  let seeds = Seeds.collect (entry_of f) ~lanes_for in
  check_int "one group from the second run" 1 (List.length seeds)

(* --- Look-ahead ----------------------------------------------------------- *)

let test_lookahead_scores () =
  let f =
    canonical
      {|
kernel la(double A[], double B[], double C[], long i) {
  A[i+0] = B[i+0] * C[i+0] + B[i+1];
  A[i+1] = B[i+1] * C[i+1] + B[i+0];
}
|}
  in
  (* Loads of B, ordered by offset. *)
  let loads =
    List.filter
      (fun (j : Defs.instr) ->
        Instr.is_load j
        &&
        match Snslp_analysis.Address.of_instr j with
        | Some a -> (
            match a.Snslp_analysis.Address.base with
            | Defs.Arg g -> g.Defs.arg_pos = 1
            | _ -> false)
        | None -> false)
      (Block.instrs (entry_of f))
    |> List.sort (fun a b ->
           let off j =
             (Option.get (Snslp_analysis.Address.of_instr j)).Snslp_analysis.Address.index
               .Snslp_analysis.Affine.const
           in
           Int.compare (off a) (off b))
  in
  let muls =
    List.filter (fun j -> Instr.binop_kind j = Some Defs.Mul) (Block.instrs (entry_of f))
  in
  (match loads with
  | b0 :: b1 :: _ ->
      check_int "consecutive loads" 4
        (Lookahead.score ~depth:0 (Instr.value b0) (Instr.value b1));
      check_int "reversed loads" 1
        (Lookahead.score ~depth:0 (Instr.value b1) (Instr.value b0));
      check_int "splat" 3 (Lookahead.score ~depth:0 (Instr.value b0) (Instr.value b0))
  | _ -> Alcotest.fail "loads not found");
  (match muls with
  | [ m0; m1 ] ->
      let shallow = Lookahead.score ~depth:0 (Instr.value m0) (Instr.value m1) in
      let deep = Lookahead.score ~depth:2 (Instr.value m0) (Instr.value m1) in
      check_int "same opcode shallow" 2 shallow;
      check "look-ahead sees operands" true (deep > shallow)
  | _ -> Alcotest.fail "muls not found");
  check_int "constants pair" 2
    (Lookahead.score ~depth:0 (Value.const_float 1.0) (Value.const_float 2.0));
  check_int "mismatch fails" 0
    (Lookahead.score ~depth:0 (Value.const_float 1.0)
       (Instr.value (List.hd loads)))

(* --- Chains and APOs ------------------------------------------------------- *)

(* Chain of A[i] = B[i] - C[i] + D[i] has trunk 2 and leaves B+ C- D+. *)
let test_chain_discovery () =
  let f = canonical "kernel c(double A[], double B[], double C[], double D[], long i) { A[i] = B[i] - C[i] + D[i]; }" in
  let root =
    List.find (fun j -> Instr.binop_kind j = Some Defs.Add) (Block.instrs (entry_of f))
  in
  match Chain.discover Config.snslp f root with
  | None -> Alcotest.fail "chain not discovered"
  | Some chain ->
      check_int "trunk size" 2 (Chain.size chain);
      check_int "leaves" 3 (Array.length chain.Chain.leaves);
      let apos = Array.map (fun (l : Chain.leaf) -> l.Chain.lapo) chain.Chain.leaves in
      check "APOs are + - +" true (apos = [| Apo.Plus; Apo.Minus; Apo.Plus |]);
      check "canonical left-leaning" true (Chain.is_canonical chain)

(* A - (B + C): right-subtree flips APOs (paper Fig. 4 rule). *)
let test_apo_right_subtree () =
  let f = canonical "kernel c(double A[], double B[], double C[], double D[], long i) { A[i] = B[i] - (C[i] + D[i]); }" in
  let root =
    List.find (fun j -> Instr.binop_kind j = Some Defs.Sub) (Block.instrs (entry_of f))
  in
  match Chain.discover Config.snslp f root with
  | None -> Alcotest.fail "chain not discovered"
  | Some chain ->
      let apos = Array.map (fun (l : Chain.leaf) -> l.Chain.lapo) chain.Chain.leaves in
      check "APOs are + - -" true (apos = [| Apo.Plus; Apo.Minus; Apo.Minus |]);
      check "not canonical (right subtree)" false (Chain.is_canonical chain)

(* Nested inverse: A - (B - C) gives C a Plus APO (double flip). *)
let test_apo_double_flip () =
  let f = canonical "kernel c(double A[], double B[], double C[], double D[], long i) { A[i] = B[i] - (C[i] - D[i]); }" in
  let root =
    List.find
      (fun (j : Defs.instr) ->
        Instr.binop_kind j = Some Defs.Sub
        && match j.Defs.ops.(1) with Defs.Instr k -> Instr.is_binop k | _ -> false)
      (Block.instrs (entry_of f))
  in
  match Chain.discover Config.snslp f root with
  | None -> Alcotest.fail "chain not discovered"
  | Some chain ->
      let apos = Array.map (fun (l : Chain.leaf) -> l.Chain.lapo) chain.Chain.leaves in
      check "APOs are + - +" true (apos = [| Apo.Plus; Apo.Minus; Apo.Plus |])

let test_apo_muldiv () =
  let f = canonical "kernel c(double A[], double B[], double C[], double D[], long i) { A[i] = B[i] / (C[i] * D[i]); }" in
  let root =
    List.find (fun j -> Instr.binop_kind j = Some Defs.Div) (Block.instrs (entry_of f))
  in
  match Chain.discover Config.snslp f root with
  | None -> Alcotest.fail "mul/div chain not discovered"
  | Some chain ->
      check "family" true (chain.Chain.fam = Family.Mul_div);
      let apos = Array.map (fun (l : Chain.leaf) -> l.Chain.lapo) chain.Chain.leaves in
      check "reciprocal APOs" true (apos = [| Apo.Plus; Apo.Minus; Apo.Minus |])

let test_lslp_chain_rejects_inverse () =
  let f = canonical "kernel c(double A[], double B[], double C[], double D[], long i) { A[i] = B[i] - C[i] + D[i]; }" in
  let root =
    List.find (fun j -> Instr.binop_kind j = Some Defs.Add) (Block.instrs (entry_of f))
  in
  (* In LSLP mode the sub interrupts the chain: only one trunk op
     remains, below the minimum size. *)
  check "no Multi-Node across a sub" true (Chain.discover Config.lslp f root = None);
  (* But a pure add chain is a Multi-Node. *)
  let g = canonical "kernel c(double A[], double B[], double C[], double D[], long i) { A[i] = B[i] + C[i] + D[i]; }" in
  let root = find_chain_root ~kind:Defs.Add g in
  check "Multi-Node on pure adds" true (Chain.discover Config.lslp g root <> None)

let test_vanilla_never_chains () =
  let f = canonical "kernel c(double A[], double B[], double C[], double D[], long i) { A[i] = B[i] + C[i] + D[i]; }" in
  let root = find_chain_root ~kind:Defs.Add f in
  check "vanilla has no chains" true (Chain.discover Config.vanilla f root = None)

let test_chain_multi_use_interrupts () =
  (* t is used twice, so it cannot be an interior trunk node. *)
  let f =
    canonical
      {|
kernel c(double A[], double B[], double C[], double D[], long i) {
  double t = B[i] + C[i];
  A[i] = t + D[i];
  A[i+4] = t;
}
|}
  in
  let root =
    List.find
      (fun j ->
        Instr.binop_kind j = Some Defs.Add
        && (match j.Defs.ops.(0) with Defs.Instr k -> Instr.is_binop k | _ -> false))
      (Block.instrs (entry_of f))
  in
  check "multi-use stops the chain" true (Chain.discover Config.snslp f root = None)

let test_max_chain_cap () =
  let terms = List.init 20 (fun k -> Printf.sprintf "B[i+%d]" k) in
  let expr = String.concat " + " terms in
  let src =
    Printf.sprintf "kernel c(double A[], double B[], long i) { A[i] = %s; }" expr
  in
  let f = canonical src in
  let root =
    List.find
      (fun (j : Defs.instr) ->
        Instr.is_binop j
        && Ty.is_float j.Defs.ty
        && not
             (List.exists (fun (u, _) -> Instr.is_binop u) (Func.uses_of f (Instr.value j))))
      (Block.instrs (entry_of f))
  in
  let config = { Config.snslp with Config.max_chain = 4 } in
  match Chain.discover config f root with
  | None -> Alcotest.fail "capped chain should still form"
  | Some chain -> check "cap respected" true (Chain.size chain <= 4)

(* --- Paper cost numbers ---------------------------------------------------- *)

let vect_cost setting src =
  let f = compile src in
  let result = Pipeline.run ~setting:(Some setting) f in
  match result.Pipeline.vect_report with
  | Some { Vectorize.trees = [ t ]; _ } -> t.Vectorize.cost.Cost.total
  | _ -> Alcotest.fail "expected exactly one SLP tree"

let motiv_leaf_src = (Option.get (Snslp_kernels.Registry.find "motiv_leaf")).Snslp_kernels.Registry.source
let motiv_trunk_src = (Option.get (Snslp_kernels.Registry.find "motiv_trunk")).Snslp_kernels.Registry.source

let test_fig2_costs () =
  (* Paper Fig. 2: vanilla SLP total cost 0 (not profitable); SN-SLP
     -6 (fully vectorized). LSLP behaves like vanilla here. *)
  check_f "SLP cost" 0.0 (vect_cost Config.vanilla motiv_leaf_src);
  check_f "LSLP cost" 0.0 (vect_cost Config.lslp motiv_leaf_src);
  check_f "SN-SLP cost" (-6.0) (vect_cost Config.snslp motiv_leaf_src)

let test_fig3_costs () =
  (* Paper Fig. 3: SLP +4; SN-SLP -6. *)
  check_f "SLP cost" 4.0 (vect_cost Config.vanilla motiv_trunk_src);
  check_f "LSLP cost" 4.0 (vect_cost Config.lslp motiv_trunk_src);
  check_f "SN-SLP cost" (-6.0) (vect_cost Config.snslp motiv_trunk_src)

(* --- Graph shapes ----------------------------------------------------------- *)

let graph_of setting src =
  let f = compile src in
  ignore (Fold.run f);
  ignore (Simplify.run f);
  ignore (Cse.run f);
  let block = Func.entry f in
  let seeds = Seeds.collect block ~lanes_for in
  match seeds with
  | [ seed ] -> (
      match Graph.build setting f block seed with
      | Some g -> g
      | None -> Alcotest.fail "graph not built")
  | _ -> Alcotest.fail "expected one seed"

let count_kind g p = List.length (List.filter (fun (n : Graph.node) -> p n.Graph.kind) (Graph.nodes g))

let test_graph_fig2_vanilla_shape () =
  let g = graph_of Config.vanilla motiv_leaf_src in
  check_int "six nodes" 6 (List.length (Graph.nodes g));
  check_int "two gathers" 2
    (count_kind g (function Graph.K_gather -> true | _ -> false));
  check_int "no alt nodes" 0
    (count_kind g (function Graph.K_alt _ -> true | _ -> false))

let test_graph_fig3_vanilla_has_alt () =
  let g = graph_of Config.vanilla motiv_trunk_src in
  check_int "two alternating nodes" 2
    (count_kind g (function Graph.K_alt _ -> true | _ -> false))

let test_graph_fig2_snslp_shape () =
  let g = graph_of Config.snslp motiv_leaf_src in
  check_int "six nodes" 6 (List.length (Graph.nodes g));
  check_int "no gathers" 0
    (count_kind g (function Graph.K_gather | Graph.K_splat -> true | _ -> false));
  check_int "one supernode recorded" 1 (List.length g.Graph.supernode_sizes);
  check_int "supernode size 2" 2 (List.hd g.Graph.supernode_sizes)

let test_graph_splat_detection () =
  let g =
    graph_of Config.vanilla
      {|
kernel sp(double A[], double B[], double s, long i) {
  A[i+0] = B[i+0] * s;
  A[i+1] = B[i+1] * s;
}
|}
  in
  check_int "one splat" 1 (count_kind g (function Graph.K_splat -> true | _ -> false))

(* --- Codegen ----------------------------------------------------------------- *)

let test_codegen_motiv_leaf () =
  let f = compile motiv_leaf_src in
  let result = Pipeline.run ~setting:(Some Config.snslp) f in
  let out = result.Pipeline.func in
  Verifier.verify_exn out;
  let vec_instrs =
    Func.fold_instrs (fun n j -> if Ty.is_vector j.Defs.ty then n + 1 else n) 0 out
  in
  let vstores =
    Func.fold_instrs
      (fun n j ->
        if Instr.is_store j && Ty.is_vector (Value.ty j.Defs.ops.(0)) then n + 1 else n)
      0 out
  in
  check "vector code present" true (vec_instrs >= 5);
  check_int "one vector store" 1 vstores;
  (* No scalar arithmetic remains. *)
  let scalar_fp_ops =
    Func.fold_instrs
      (fun n j -> if Instr.is_binop j && Ty.is_int j.Defs.ty = false && not (Ty.is_vector j.Defs.ty) then n + 1 else n)
      0 out
  in
  check_int "no scalar fp arithmetic left" 0 scalar_fp_ops

let test_codegen_extract_for_external_use () =
  (* B[i]+C[i] pair is vectorized; the scalar sum of lane 0 is also
     stored elsewhere, forcing an extract. *)
  let src =
    {|
kernel ext(double A[], double B[], double C[], long i) {
  double t = B[i+0] + C[i+0];
  double u = B[i+1] + C[i+1];
  A[i+0] = t;
  A[i+1] = u;
  A[i+7] = t * 2.0;
}
|}
  in
  let f = compile src in
  let result = Pipeline.run ~setting:(Some Config.snslp) f in
  let out = result.Pipeline.func in
  Verifier.verify_exn out;
  let extracts =
    Func.fold_instrs
      (fun n j -> (match j.Defs.op with Defs.Extract -> n + 1 | _ -> n))
      0 out
  in
  check "extract emitted" true (extracts >= 1)

let test_codegen_gather_inserts () =
  (* Non-adjacent loads become an insertelement chain. *)
  let src =
    {|
kernel ga(double A[], double B[], long i) {
  A[i+0] = B[2*i+0] + 1.0;
  A[i+1] = B[2*i+4] + 1.0;
}
|}
  in
  let f = compile src in
  let result = Pipeline.run ~setting:(Some Config.snslp) f in
  let out = result.Pipeline.func in
  (match result.Pipeline.vect_report with
  | Some rep ->
      if rep.Vectorize.stats.Stats.graphs_vectorized = 1 then begin
        let inserts =
          Func.fold_instrs
            (fun n j -> (match j.Defs.op with Defs.Insert -> n + 1 | _ -> n))
            0 out
        in
        check "inserts emitted" true (inserts >= 2)
      end
  | None -> Alcotest.fail "no vectorizer report")

let test_stats_accounting () =
  let f = compile motiv_leaf_src in
  let result = Pipeline.run ~setting:(Some Config.snslp) f in
  match result.Pipeline.vect_report with
  | Some rep ->
      let s = rep.Vectorize.stats in
      check_int "one graph" 1 s.Stats.graphs_built;
      check_int "one vectorized" 1 s.Stats.graphs_vectorized;
      check_int "aggregate size" 2 (Stats.aggregate_supernode_size s);
      check_f "average size" 2.0 (Stats.average_supernode_size s);
      check "scalars erased" true (s.Stats.scalars_erased >= 8);
      check "vector instrs counted" true (s.Stats.vector_instrs_emitted >= 5)
  | None -> Alcotest.fail "no vectorizer report"

let test_rejected_graph_keeps_scalar_code () =
  (* Vanilla on motiv_leaf rejects: output must stay scalar and be
     semantically identical to the input. *)
  let f = compile motiv_leaf_src in
  let result = Pipeline.run ~setting:(Some Config.vanilla) f in
  let vec_instrs =
    Func.fold_instrs
      (fun n j -> if Ty.is_vector j.Defs.ty then n + 1 else n)
      0 result.Pipeline.func
  in
  check_int "no vector instructions" 0 vec_instrs

(* --- memoize = Auto ------------------------------------------------------ *)

let test_resolve_memo_threshold () =
  let resolve n = (Config.resolve_memo ~num_instrs:n { Config.snslp with Config.memoize = Config.Auto }).Config.memoize in
  Alcotest.(check bool) "below threshold resolves Off" true
    (resolve (Config.auto_memo_threshold - 1) = Config.Off);
  Alcotest.(check bool) "at threshold resolves On" true
    (resolve Config.auto_memo_threshold = Config.On);
  (* Concrete settings pass through untouched, whatever the size. *)
  List.iter
    (fun m ->
      Alcotest.(check bool) "concrete settings unchanged" true
        ((Config.resolve_memo ~num_instrs:0 { Config.snslp with Config.memoize = m }).Config.memoize = m))
    [ Config.On; Config.Off ]

let test_memo_on () =
  let on m = Config.memo_on { Config.snslp with Config.memoize = m } in
  Alcotest.(check bool) "On is on" true (on Config.On);
  Alcotest.(check bool) "unresolved Auto defaults on" true (on Config.Auto);
  Alcotest.(check bool) "Off is off" false (on Config.Off)

let test_memoize_output_identity () =
  (* The memoize knob trades compile time, never output: all three
     settings print the same optimized IR. *)
  let f = compile motiv_leaf_src in
  let ir m =
    Printer.func_to_string
      (Pipeline.run ~setting:(Some { Config.snslp with Config.memoize = m }) f).Pipeline.func
  in
  let reference = ir Config.On in
  Alcotest.(check string) "Off matches On" reference (ir Config.Off);
  Alcotest.(check string) "Auto matches On" reference (ir Config.Auto)

let test_fingerprint_excludes_speed_knobs () =
  let base = Config.snslp in
  let fp c = Config.fingerprint c in
  List.iter
    (fun variant ->
      Alcotest.(check string) "speed knobs don't reach the fingerprint"
        (fp base) (fp variant))
    [
      { base with Config.memoize = Config.Off };
      { base with Config.memoize = Config.Auto };
      { base with Config.jobs = 17 };
    ];
  Alcotest.(check bool) "modes do" false
    (String.equal (fp Config.snslp) (fp Config.vanilla))

let suite =
  [
    ( "seeds",
      [
        Alcotest.test_case "adjacent stores" `Quick test_seeds_adjacent_stores;
        Alcotest.test_case "runs chunked" `Quick test_seeds_runs_are_chunked;
        Alcotest.test_case "element width" `Quick test_seeds_respect_element_width;
        Alcotest.test_case "gaps split runs" `Quick test_seeds_gap_splits_run;
      ] );
    ( "lookahead",
      [ Alcotest.test_case "score table" `Quick test_lookahead_scores ] );
    ( "chains",
      [
        Alcotest.test_case "discovery and APOs" `Quick test_chain_discovery;
        Alcotest.test_case "right-subtree APO flip" `Quick test_apo_right_subtree;
        Alcotest.test_case "double flip" `Quick test_apo_double_flip;
        Alcotest.test_case "mul/div family" `Quick test_apo_muldiv;
        Alcotest.test_case "LSLP rejects inverses" `Quick test_lslp_chain_rejects_inverse;
        Alcotest.test_case "vanilla never chains" `Quick test_vanilla_never_chains;
        Alcotest.test_case "multi-use interrupts" `Quick test_chain_multi_use_interrupts;
        Alcotest.test_case "max chain cap" `Quick test_max_chain_cap;
      ] );
    ( "paper-costs",
      [
        Alcotest.test_case "figure 2" `Quick test_fig2_costs;
        Alcotest.test_case "figure 3" `Quick test_fig3_costs;
      ] );
    ( "graph",
      [
        Alcotest.test_case "fig2 vanilla shape" `Quick test_graph_fig2_vanilla_shape;
        Alcotest.test_case "fig3 vanilla alt nodes" `Quick test_graph_fig3_vanilla_has_alt;
        Alcotest.test_case "fig2 sn-slp shape" `Quick test_graph_fig2_snslp_shape;
        Alcotest.test_case "splat detection" `Quick test_graph_splat_detection;
      ] );
    ( "codegen",
      [
        Alcotest.test_case "motiv_leaf vector code" `Quick test_codegen_motiv_leaf;
        Alcotest.test_case "extract for external use" `Quick
          test_codegen_extract_for_external_use;
        Alcotest.test_case "gather inserts" `Quick test_codegen_gather_inserts;
        Alcotest.test_case "stats accounting" `Quick test_stats_accounting;
        Alcotest.test_case "rejected graphs stay scalar" `Quick
          test_rejected_graph_keeps_scalar_code;
      ] );
    ( "memoize",
      [
        Alcotest.test_case "Auto resolves by size" `Quick test_resolve_memo_threshold;
        Alcotest.test_case "memo_on" `Quick test_memo_on;
        Alcotest.test_case "output identity across settings" `Quick
          test_memoize_output_identity;
        Alcotest.test_case "fingerprint excludes speed knobs" `Quick
          test_fingerprint_excludes_speed_knobs;
      ] );
  ]
